#include "core/plan.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string_view>
#include <utility>

#include "common/error.h"
#include "common/logging.h"
#include "core/passes.h"

namespace gs::core {
namespace {

bool HasWalkOps(const Program& p) {
  for (const Node& n : p.nodes()) {
    if (n.kind == OpKind::kWalkStep || n.kind == OpKind::kWalkRestartStep ||
        n.kind == OpKind::kNode2VecStep || n.kind == OpKind::kTopKVisited) {
      return true;
    }
  }
  return false;
}

// Pure walk programs (DeepWalk, Node2Vec): only inputs and walk steps, all
// outputs positionally aligned with the frontier. Super-batching these is
// plain concatenation — every walker is independent — so no labeled id
// spaces are needed.
bool IsPureWalkProgram(const Program& p) {
  bool has_walk = false;
  for (const Node& n : p.nodes()) {
    switch (n.kind) {
      case OpKind::kGraphInput:
      case OpKind::kFrontierInput:
      case OpKind::kTensorInput:
        break;
      case OpKind::kWalkStep:
      case OpKind::kWalkRestartStep:
      case OpKind::kNode2VecStep:
        has_walk = true;
        break;
      default:
        return false;
    }
  }
  return has_walk;
}

bool HasTensorOutput(const Program& p) {
  for (int out : p.outputs()) {
    if (p.node(out).output_kind() == ValueKind::kTensor) {
      return true;
    }
  }
  return false;
}

// --- Text serialization helpers ------------------------------------------

uint64_t Fnv1a(std::string_view s) {
  uint64_t h = 1469598103934665603ull;
  for (const unsigned char c : s) {
    h ^= c;
    h *= 1099511628211ull;
  }
  return h;
}

// Bit-exact float round trip: hexadecimal float literals survive text form
// without rounding (float -> double promotion is exact; strtof rounds the
// exact value back to the original float).
std::string HexFloat(float v) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%a", static_cast<double>(v));
  return buf;
}

float ParseHexFloat(const std::string& s) {
  char* end = nullptr;
  const float v = std::strtof(s.c_str(), &end);
  GS_CHECK(end != nullptr && *end == '\0' && !s.empty()) << "plan: bad float literal '" << s
                                                         << "'";
  return v;
}

// Reads the next whitespace token and strips its "key=" prefix.
std::string TakeField(std::istringstream& in, const char* key) {
  std::string token;
  GS_CHECK(static_cast<bool>(in >> token)) << "plan: missing field '" << key << "'";
  const std::string prefix = std::string(key) + "=";
  GS_CHECK(token.rfind(prefix, 0) == 0)
      << "plan: expected '" << key << "=...', got '" << token << "'";
  return token.substr(prefix.size());
}

int64_t TakeInt(std::istringstream& in, const char* key) {
  const std::string v = TakeField(in, key);
  char* end = nullptr;
  const int64_t parsed = std::strtoll(v.c_str(), &end, 10);
  GS_CHECK(end != nullptr && *end == '\0' && !v.empty())
      << "plan: bad integer for '" << key << "': '" << v << "'";
  return parsed;
}

uint64_t TakeUint(std::istringstream& in, const char* key) {
  const std::string v = TakeField(in, key);
  char* end = nullptr;
  const uint64_t parsed = std::strtoull(v.c_str(), &end, 10);
  GS_CHECK(end != nullptr && *end == '\0' && !v.empty())
      << "plan: bad integer for '" << key << "': '" << v << "'";
  return parsed;
}

bool TakeBool(std::istringstream& in, const char* key) {
  const int64_t v = TakeInt(in, key);
  GS_CHECK(v == 0 || v == 1) << "plan: bad flag for '" << key << "'";
  return v != 0;
}

std::string JoinInts(const std::vector<int>& values) {
  std::ostringstream out;
  for (size_t i = 0; i < values.size(); ++i) {
    out << (i > 0 ? "," : "") << values[i];
  }
  return out.str();
}

std::vector<int> ParseIntList(const std::string& list) {
  std::vector<int> out;
  std::istringstream in(list);
  std::string item;
  while (std::getline(in, item, ',')) {
    GS_CHECK(!item.empty()) << "plan: malformed id list '" << list << "'";
    char* end = nullptr;
    out.push_back(static_cast<int>(std::strtol(item.c_str(), &end, 10)));
    GS_CHECK(end != nullptr && *end == '\0') << "plan: malformed id list '" << list << "'";
  }
  return out;
}

// The digest-covered payload: everything that defines the artifact (label,
// options, calibration/tuning state, program nodes with all annotations,
// outputs). The report/pass-timing trailer is informational and excluded so
// the digest is stable across runs of the same compilation.
std::string SemanticBody(const Program& program, const SamplerOptions& o,
                         const std::string& label, bool calibrated, int tuned_super_batch) {
  GS_CHECK(label.find_first_of(" \t\n\r") == std::string::npos)
      << "plan labels must not contain whitespace: '" << label << "'";
  std::ostringstream out;
  out << "label " << (label.empty() ? "-" : label) << "\n";
  out << "options fusion=" << o.enable_fusion << " extract_select=" << o.fuse_extract_select
      << " edge_maps=" << o.fuse_edge_maps << " sddmm=" << o.rewrite_sddmm
      << " preprocess=" << o.enable_preprocessing << " layout=" << o.enable_layout_selection
      << " greedy=" << o.greedy_when_layout_disabled << " super_batch=" << o.super_batch
      << " memory_budget=" << o.memory_budget_bytes
      << " calibration_batches=" << o.calibration_batches << " seed=" << o.seed << "\n";
  out << "state calibrated=" << calibrated << " tuned_super_batch=" << tuned_super_batch
      << "\n";
  out << "nodes " << program.size() << "\n";
  for (const Node& n : program.nodes()) {
    GS_CHECK(n.attrs.name.find_first_of(" \t\n\r") == std::string::npos)
        << "binding names must not contain whitespace: '" << n.attrs.name << "'";
    out << "node id=" << n.id << " kind=" << OpKindName(n.kind) << " in=" << JoinInts(n.inputs)
        << " k=" << n.attrs.k << " axis=" << n.attrs.axis
        << " bop=" << static_cast<int>(n.attrs.bop) << " scalar=" << HexFloat(n.attrs.scalar)
        << " p=" << HexFloat(n.attrs.p) << " q=" << HexFloat(n.attrs.q)
        << " flag=" << n.attrs.flag << " format=" << static_cast<int>(n.attrs.format)
        << " name=" << (n.attrs.name.empty() ? "-" : n.attrs.name)
        << " nstages=" << n.attrs.stages.size() << " inv=" << n.invariant
        << " fc=" << n.has_format_choice << " cf=" << static_cast<int>(n.chosen_format)
        << " cr=" << n.compact_rows << "\n";
    for (const sparse::EdgeMapStage& s : n.attrs.stages) {
      out << "stage op=" << static_cast<int>(s.op) << " kind=" << static_cast<int>(s.kind)
          << " scalar=" << HexFloat(s.scalar) << " a=" << s.operand << " b=" << s.operand2
          << "\n";
    }
  }
  out << "outputs " << JoinInts(program.outputs()) << "\n";
  return out.str();
}

}  // namespace

bool PlanValidity::CheckAgainst(const graph::DegreeStats& now, std::string* why) const {
  if (!bound) {
    return true;
  }
  const auto drift = [](double was, double is) {
    return std::abs(is - was) / std::max(std::abs(was), 1e-9);
  };
  const double mean_drift = drift(mean_in_degree, now.mean_in_degree);
  if (mean_drift > max_drift) {
    if (why != nullptr) {
      std::ostringstream out;
      out << "mean in-degree drifted " << mean_drift << " (bound " << max_drift << "): "
          << mean_in_degree << " -> " << now.mean_in_degree;
      *why = out.str();
    }
    return false;
  }
  const double p99_drift =
      drift(static_cast<double>(p99_in_degree), static_cast<double>(now.p99_in_degree));
  if (p99_drift > max_drift) {
    if (why != nullptr) {
      std::ostringstream out;
      out << "p99 in-degree drifted " << p99_drift << " (bound " << max_drift << "): "
          << p99_in_degree << " -> " << now.p99_in_degree;
      *why = out.str();
    }
    return false;
  }
  const double overlap = graph::DegreeStats::HubOverlap(hubs, now.hubs);
  if (overlap < min_hub_overlap) {
    if (why != nullptr) {
      std::ostringstream out;
      out << "hub-set overlap " << overlap << " below bound " << min_hub_overlap;
      *why = out.str();
    }
    return false;
  }
  return true;
}

std::string OptimizationReport::ToString() const {
  std::ostringstream out;
  out << "sddmm=" << sddmm_rewrites << " hoisted=" << hoisted_ops
      << " extract-select=" << extract_select_fusions << " edge-map=" << edge_map_fusions
      << " map-reduce=" << edge_map_reduce_fusions << " cse=" << cse_merged
      << " precomputed=" << precomputed_values << " layouts=" << annotated_layouts
      << " compacted=" << compacted_extracts;
  if (!passes.empty()) {
    out << "\npasses:";
    for (const PassStats& s : passes) {
      out << "\n  " << s.ToString();
    }
  }
  return out.str();
}

PassManager StandardPassPipeline(const SamplerOptions& options) {
  PassManager pipeline;
  if (options.enable_fusion && options.rewrite_sddmm) {
    pipeline.Register("sddmm-rewrite", RewriteSddmm);
  }
  if (options.enable_preprocessing) {
    pipeline.Register("hoist-over-extract", HoistOverExtract);
  }
  if (options.enable_fusion) {
    if (options.fuse_extract_select) {
      pipeline.Register("fuse-extract-select", FuseExtractSelect);
    }
    if (options.fuse_edge_maps) {
      // Map-reduce fusion runs before AND after chain fusion: the second
      // run absorbs reductions over chains the first fusion just formed.
      pipeline.Register("fuse-edge-map-reduce", FuseEdgeMapReduce);
      pipeline.Register("fuse-edge-maps", FuseEdgeMaps);
      pipeline.Register("fuse-edge-map-reduce", FuseEdgeMapReduce);
    }
  }
  pipeline.Register("cse", EliminateCommonSubexpressions);
  pipeline.Register("dce", DeadCodeElimination);
  pipeline.Register("mark-invariant", [](Program& p) {
    MarkInvariant(p);
    return 0;
  });
  return pipeline;
}

CompiledPlan::CompiledPlan(Program program, SamplerOptions options, std::string label)
    : program_(std::move(program)), options_(options), label_(std::move(label)) {
  program_.Verify();
  PassManagerOptions pass_options;
  pass_options.verify = options_.verify_passes;
  pass_options.dump_ir = options_.dump_ir_after_passes;
  pass_options.pass_limit = options_.pass_limit;
  StandardPassPipeline(options_).Run(program_, pass_options, &report_.passes);
  program_.Verify();
  for (const PassStats& s : report_.passes) {
    if (s.name == "sddmm-rewrite") {
      report_.sddmm_rewrites += s.rewrites;
    } else if (s.name == "hoist-over-extract") {
      report_.hoisted_ops += s.rewrites;
    } else if (s.name == "fuse-extract-select") {
      report_.extract_select_fusions += s.rewrites;
    } else if (s.name == "fuse-edge-maps") {
      report_.edge_map_fusions += s.rewrites;
    } else if (s.name == "fuse-edge-map-reduce") {
      report_.edge_map_reduce_fusions += s.rewrites;
    } else if (s.name == "cse") {
      report_.cse_merged += s.rewrites;
    }
  }
}

void CompiledPlan::Calibrate(const Bindings& bindings,
                             std::span<const tensor::IdArray> calibration_batches,
                             const std::map<int, Value>& precomputed, Rng& rng) {
  if (calibrated_) {
    return;
  }
  GS_CHECK(!frozen_) << "cannot calibrate a frozen plan";
  calibrated_ = true;
  if (!options_.enable_layout_selection) {
    return;
  }
  // Bind the mutation-validity predicate to the distribution the layout
  // decisions are about to be measured against. Plans without layout
  // selection skip this (no degree-sensitive decisions => always valid).
  if (bindings.graph != nullptr && bindings.graph->defined()) {
    const graph::DegreeStats stats = graph::DegreeStats::FromMatrix(*bindings.graph);
    validity_.bound = true;
    validity_.mean_in_degree = stats.mean_in_degree;
    validity_.p99_in_degree = stats.p99_in_degree;
    validity_.hubs = stats.hubs;
  }
  PassManagerOptions pass_options;
  pass_options.verify = options_.verify_passes;
  pass_options.dump_ir = options_.dump_ir_after_passes;
  report_.passes.push_back(
      PassManager::RunOne("select-data-layout", program_, pass_options, [&](Program& p) {
        SelectDataLayout(p, bindings, calibration_batches, precomputed, rng);
        return 0;
      }));
}

void CompiledPlan::set_tuned_super_batch(int size) {
  GS_CHECK(!frozen_) << "cannot tune a frozen plan";
  GS_CHECK_GE(size, 0);
  tuned_super_batch_ = size;
}

bool CompiledPlan::SuperBatchEligible() const {
  if (IsPureWalkProgram(program_)) {
    return true;
  }
  return !HasWalkOps(program_) && !HasTensorOutput(program_);
}

bool CompiledPlan::PureWalk() const { return IsPureWalkProgram(program_); }

bool CompiledPlan::Coalescable() const {
  return SuperBatchEligible() && !IsPureWalkProgram(program_);
}

LayoutMode CompiledPlan::layout_mode() const {
  return options_.enable_layout_selection
             ? LayoutMode::kPlanned
             : (options_.greedy_when_layout_disabled ? LayoutMode::kGreedy : LayoutMode::kAsIs);
}

OptimizationReport CompiledPlan::report() const {
  OptimizationReport r = report_;
  for (const Node& n : program_.nodes()) {
    r.annotated_layouts += n.has_format_choice ? 1 : 0;
    r.compacted_extracts += n.compact_rows ? 1 : 0;
  }
  return r;
}

uint64_t CompiledPlan::Digest() const {
  return Fnv1a(SemanticBody(program_, options_, label_, calibrated_, tuned_super_batch_));
}

std::string CompiledPlan::DigestHex() const {
  char digest[24];
  std::snprintf(digest, sizeof(digest), "%016llx", static_cast<unsigned long long>(Digest()));
  return digest;
}

std::string CompiledPlan::Serialize() const {
  const std::string body =
      SemanticBody(program_, options_, label_, calibrated_, tuned_super_batch_);
  char digest[24];
  std::snprintf(digest, sizeof(digest), "%016llx",
                static_cast<unsigned long long>(Fnv1a(body)));
  std::ostringstream out;
  out << "gsplan 1\n";
  out << "digest " << digest << "\n";
  out << body;
  // Informational trailer (excluded from the digest: pass wall times differ
  // run to run even for identical artifacts).
  out << "report sddmm=" << report_.sddmm_rewrites << " hoisted=" << report_.hoisted_ops
      << " extract_select=" << report_.extract_select_fusions
      << " edge_map=" << report_.edge_map_fusions
      << " map_reduce=" << report_.edge_map_reduce_fusions << " cse=" << report_.cse_merged
      << "\n";
  for (const PassStats& s : report_.passes) {
    out << "pass name=" << s.name << " rewrites=" << s.rewrites << " before=" << s.nodes_before
        << " after=" << s.nodes_after << " wall_ns=" << s.wall_ns
        << " virtual_ns=" << s.virtual_ns << " verified=" << s.verified << "\n";
  }
  // Mutation-validity predicate (gs::dyn). Informational like the report:
  // excluded from the digest, tolerated-if-absent by Deserialize, so legacy
  // artifacts load fine (with unbound, always-valid predicates).
  if (validity_.bound) {
    out << "validity mean=" << HexFloat(static_cast<float>(validity_.mean_in_degree))
        << " p99=" << validity_.p99_in_degree
        << " max_drift=" << HexFloat(static_cast<float>(validity_.max_drift))
        << " min_overlap=" << HexFloat(static_cast<float>(validity_.min_hub_overlap))
        << " hubs=" << JoinInts(std::vector<int>(validity_.hubs.begin(), validity_.hubs.end()))
        << "\n";
  }
  return out.str();
}

std::shared_ptr<CompiledPlan> CompiledPlan::Deserialize(const std::string& text) {
  std::istringstream in(text);
  std::string line;
  GS_CHECK(std::getline(in, line) && line == "gsplan 1")
      << "plan: bad header (expected 'gsplan 1')";
  GS_CHECK(std::getline(in, line) && line.rfind("digest ", 0) == 0) << "plan: missing digest";
  char* end = nullptr;
  const uint64_t stored_digest = std::strtoull(line.c_str() + 7, &end, 16);
  GS_CHECK(end != nullptr && *end == '\0') << "plan: malformed digest line";

  auto plan = std::shared_ptr<CompiledPlan>(new CompiledPlan());
  Program program;
  std::string body;
  int declared_nodes = -1;
  bool saw_outputs = false;

  while (std::getline(in, line)) {
    if (line.empty()) {
      continue;
    }
    std::istringstream ls(line);
    std::string tag;
    ls >> tag;
    if (tag == "report") {
      plan->report_.sddmm_rewrites = static_cast<int>(TakeInt(ls, "sddmm"));
      plan->report_.hoisted_ops = static_cast<int>(TakeInt(ls, "hoisted"));
      plan->report_.extract_select_fusions = static_cast<int>(TakeInt(ls, "extract_select"));
      plan->report_.edge_map_fusions = static_cast<int>(TakeInt(ls, "edge_map"));
      plan->report_.edge_map_reduce_fusions = static_cast<int>(TakeInt(ls, "map_reduce"));
      plan->report_.cse_merged = static_cast<int>(TakeInt(ls, "cse"));
      continue;
    }
    if (tag == "pass") {
      PassStats s;
      s.name = TakeField(ls, "name");
      s.rewrites = static_cast<int>(TakeInt(ls, "rewrites"));
      s.nodes_before = static_cast<int>(TakeInt(ls, "before"));
      s.nodes_after = static_cast<int>(TakeInt(ls, "after"));
      s.wall_ns = TakeInt(ls, "wall_ns");
      s.virtual_ns = TakeInt(ls, "virtual_ns");
      s.verified = TakeBool(ls, "verified");
      plan->report_.passes.push_back(std::move(s));
      continue;
    }
    if (tag == "validity") {
      PlanValidity& v = plan->validity_;
      v.bound = true;
      v.mean_in_degree = static_cast<double>(ParseHexFloat(TakeField(ls, "mean")));
      v.p99_in_degree = TakeInt(ls, "p99");
      v.max_drift = static_cast<double>(ParseHexFloat(TakeField(ls, "max_drift")));
      v.min_hub_overlap = static_cast<double>(ParseHexFloat(TakeField(ls, "min_overlap")));
      const std::vector<int> hubs = ParseIntList(TakeField(ls, "hubs"));
      v.hubs.assign(hubs.begin(), hubs.end());
      continue;
    }
    body += line;
    body += '\n';
    if (tag == "label") {
      std::string label;
      GS_CHECK(static_cast<bool>(ls >> label)) << "plan: empty label line";
      plan->label_ = label == "-" ? "" : label;
    } else if (tag == "options") {
      SamplerOptions& o = plan->options_;
      o.enable_fusion = TakeBool(ls, "fusion");
      o.fuse_extract_select = TakeBool(ls, "extract_select");
      o.fuse_edge_maps = TakeBool(ls, "edge_maps");
      o.rewrite_sddmm = TakeBool(ls, "sddmm");
      o.enable_preprocessing = TakeBool(ls, "preprocess");
      o.enable_layout_selection = TakeBool(ls, "layout");
      o.greedy_when_layout_disabled = TakeBool(ls, "greedy");
      o.super_batch = static_cast<int>(TakeInt(ls, "super_batch"));
      o.memory_budget_bytes = TakeInt(ls, "memory_budget");
      o.calibration_batches = static_cast<int>(TakeInt(ls, "calibration_batches"));
      o.seed = TakeUint(ls, "seed");
    } else if (tag == "state") {
      plan->calibrated_ = TakeBool(ls, "calibrated");
      plan->tuned_super_batch_ = static_cast<int>(TakeInt(ls, "tuned_super_batch"));
    } else if (tag == "nodes") {
      GS_CHECK(static_cast<bool>(ls >> declared_nodes)) << "plan: malformed nodes line";
    } else if (tag == "node") {
      const int id = static_cast<int>(TakeInt(ls, "id"));
      const std::string kind_name = TakeField(ls, "kind");
      OpKind kind;
      GS_CHECK(OpKindFromName(kind_name, &kind)) << "plan: unknown op kind '" << kind_name
                                                 << "'";
      const std::vector<int> inputs = ParseIntList(TakeField(ls, "in"));
      Attrs attrs;
      attrs.k = TakeInt(ls, "k");
      attrs.axis = static_cast<int>(TakeInt(ls, "axis"));
      const int64_t bop = TakeInt(ls, "bop");
      GS_CHECK(bop >= 0 && bop <= static_cast<int64_t>(BinaryOp::kPow))
          << "plan: bad binary op " << bop;
      attrs.bop = static_cast<BinaryOp>(bop);
      attrs.scalar = ParseHexFloat(TakeField(ls, "scalar"));
      attrs.p = ParseHexFloat(TakeField(ls, "p"));
      attrs.q = ParseHexFloat(TakeField(ls, "q"));
      attrs.flag = TakeBool(ls, "flag");
      const int64_t format = TakeInt(ls, "format");
      GS_CHECK(format >= 0 && format <= 2) << "plan: bad format " << format;
      attrs.format = static_cast<sparse::Format>(format);
      const std::string name = TakeField(ls, "name");
      attrs.name = name == "-" ? "" : name;
      const int64_t nstages = TakeInt(ls, "nstages");
      const bool invariant = TakeBool(ls, "inv");
      const bool has_format_choice = TakeBool(ls, "fc");
      const int64_t chosen = TakeInt(ls, "cf");
      GS_CHECK(chosen >= 0 && chosen <= 2) << "plan: bad chosen format " << chosen;
      const bool compact_rows = TakeBool(ls, "cr");
      for (int64_t s = 0; s < nstages; ++s) {
        GS_CHECK(std::getline(in, line)) << "plan: truncated stage list";
        body += line;
        body += '\n';
        std::istringstream ss(line);
        std::string stage_tag;
        ss >> stage_tag;
        GS_CHECK(stage_tag == "stage") << "plan: expected stage line, got '" << line << "'";
        sparse::EdgeMapStage stage;
        const int64_t op = TakeInt(ss, "op");
        GS_CHECK(op >= 0 && op <= static_cast<int64_t>(BinaryOp::kPow))
            << "plan: bad stage op " << op;
        stage.op = static_cast<BinaryOp>(op);
        const int64_t operand_kind = TakeInt(ss, "kind");
        GS_CHECK(operand_kind >= 0 &&
                 operand_kind <= static_cast<int64_t>(sparse::EdgeMapStage::OperandKind::kDot))
            << "plan: bad stage operand kind " << operand_kind;
        stage.kind = static_cast<sparse::EdgeMapStage::OperandKind>(operand_kind);
        stage.scalar = ParseHexFloat(TakeField(ss, "scalar"));
        stage.operand = static_cast<int>(TakeInt(ss, "a"));
        stage.operand2 = static_cast<int>(TakeInt(ss, "b"));
        attrs.stages.push_back(stage);
      }
      const int added = program.Add(kind, inputs, std::move(attrs));
      GS_CHECK_EQ(added, id) << "plan: node ids must be dense and in order";
      Node& node = program.node(added);
      node.invariant = invariant;
      node.has_format_choice = has_format_choice;
      node.chosen_format = static_cast<sparse::Format>(chosen);
      node.compact_rows = compact_rows;
    } else if (tag == "outputs") {
      std::string list;
      ls >> list;  // may be empty
      program.SetOutputs(ParseIntList(list));
      saw_outputs = true;
    } else {
      GS_CHECK(false) << "plan: unknown line '" << line << "'";
    }
  }

  GS_CHECK(declared_nodes == program.size())
      << "plan: node count mismatch (declared " << declared_nodes << ", got "
      << program.size() << ")";
  GS_CHECK(saw_outputs) << "plan: missing outputs line";
  const uint64_t digest = Fnv1a(body);
  GS_CHECK(digest == stored_digest)
      << "plan: digest mismatch (artifact corrupted or edited): stored "
      << std::hex << stored_digest << ", computed " << digest;
  program.Verify();
  plan->program_ = std::move(program);
  plan->restored_ = true;
  // A calibrated artifact is complete — freeze it so shared use is safe. An
  // uncalibrated one may still calibrate in its new process.
  plan->frozen_ = plan->calibrated_;
  return plan;
}

std::string CompiledPlan::DebugString() const {
  std::ostringstream out;
  out << "CompiledPlan(label=" << (label_.empty() ? "-" : label_)
      << ", fusion=" << options_.enable_fusion << ", preprocess=" << options_.enable_preprocessing
      << ", layout=" << options_.enable_layout_selection << ", calibrated=" << calibrated_
      << ", frozen=" << frozen_ << ", restored=" << restored_
      << ", tuned_super_batch=" << tuned_super_batch_ << ")\n";
  for (const PassStats& s : report_.passes) {
    out << "  " << s.ToString() << "\n";
  }
  out << program_.ToString();
  return out.str();
}

void SavePlanFile(const CompiledPlan& plan, const std::string& path) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  GS_CHECK(out.good()) << "cannot open plan file for writing: " << path;
  const std::string text = plan.Serialize();
  out.write(text.data(), static_cast<std::streamsize>(text.size()));
  out.flush();
  GS_CHECK(out.good()) << "failed writing plan file: " << path;
}

std::shared_ptr<CompiledPlan> LoadPlanFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  GS_CHECK(in.good()) << "cannot open plan file: " << path;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  GS_CHECK(!in.bad()) << "failed reading plan file: " << path;
  return CompiledPlan::Deserialize(buffer.str());
}

}  // namespace gs::core
