// Data-flow intermediate representation for graph sampling programs
// (Section 4.1 of the paper).
//
// A Program is an SSA data-flow graph: nodes are operators, edges are value
// dependencies. Programs are built by tracing the matrix-centric API
// (core/trace.h) — the role torch.fx plays in the paper — then rewritten by
// the optimization passes (core/passes.h) and interpreted per mini-batch by
// the Executor (core/executor.h).

#ifndef GSAMPLER_CORE_IR_H_
#define GSAMPLER_CORE_IR_H_

#include <string>
#include <vector>

#include "common/binary_op.h"
#include "sparse/fused.h"
#include "sparse/matrix.h"

namespace gs::core {

enum class ValueKind {
  kMatrix,
  kTensor,
  kIds,
};

enum class OpKind {
  // --- Inputs (bound per batch or per program) ---
  kGraphInput,     // the base graph's adjacency matrix (batch-invariant)
  kFrontierInput,  // per-batch frontier ids
  kTensorInput,    // named dense tensor (features, model weights, ...)

  // --- Extract ---
  kSliceCols,  // (matrix, ids) -> matrix           A[:, frontiers]
  kSliceRows,  // (matrix, ids) -> matrix           A[rows, :]

  // --- Compute: sparse ---
  kSumAxis,        // (matrix) -> tensor             attrs.axis
  kBroadcast,      // (matrix, tensor) -> matrix     attrs.bop, attrs.axis
  kEltwiseScalar,  // (matrix) -> matrix             attrs.bop, attrs.scalar
  kEltwiseBinary,  // (matrix, matrix) -> matrix     attrs.bop (shared pattern)
  kDenseEltwise,   // (matrix, tensor) -> matrix     attrs.bop
  kSpMM,           // (matrix, tensor) -> tensor
  kSddmm,          // (matrix, u, v) -> matrix       attrs.flag = mul_existing
  kEdgeValues,     // (matrix) -> tensor             CSC-order edge values
  kWithValues,     // (matrix, tensor) -> matrix     CSC-order edge values

  // --- Compute: dense ---
  kMatMul,             // (tensor, tensor) -> tensor
  kTranspose,          // (tensor) -> tensor
  kRelu,               // (tensor) -> tensor
  kSoftmax,            // (tensor) -> tensor
  kTensorBinary,       // (tensor, tensor) -> tensor  attrs.bop
  kTensorBinaryScalar, // (tensor) -> tensor          attrs.bop, attrs.scalar
  kGatherRows,         // (tensor, ids) -> tensor
  kStackColumns,       // (tensor...) -> tensor
  kTensorSum,          // (tensor) -> tensor          attrs.axis

  // --- Select ---
  kIndividualSample,   // (matrix) -> matrix          attrs.k (uniform)
  kIndividualSampleP,  // (matrix, probs_matrix) -> matrix  attrs.k
  kCollectiveSample,   // (matrix, probs_tensor) -> matrix  attrs.k

  // --- Finalize ---
  kRowIds,       // (matrix) -> ids
  kColIds,       // (matrix) -> ids
  kCompactRows,  // (matrix) -> matrix
  kUnique,       // (ids...) -> ids

  // --- Walks ---
  kWalkStep,         // (matrix, ids) -> ids
  kWalkRestartStep,  // (matrix, cur_ids, root_ids) -> ids  attrs.p = restart prob
  kNode2VecStep,     // (matrix, cur_ids, prev_ids) -> ids  attrs.p, attrs.q
  kTopKVisited,      // (roots_ids, step_ids...) -> matrix  attrs.k

  // --- Introduced by optimization passes ---
  kFusedSliceSample,    // (matrix, ids) -> matrix    attrs.k  (Extract-Select)
  kFusedEdgeMap,        // (matrix, operands...) -> matrix   attrs.stages
  kFusedEdgeMapReduce,  // (matrix, operands...) -> tensor   attrs.stages, axis
  kConvertFormat,       // (matrix) -> matrix          attrs.format (layout pass)
};

const char* OpKindName(OpKind kind);
// Inverse of OpKindName (plan deserialization). Returns false when `name`
// matches no operator.
bool OpKindFromName(const std::string& name, OpKind* kind);
ValueKind OutputKindOf(OpKind kind);
// True for operators that produce a new sparsity structure (extract/select/
// compaction); only these get layout annotations (Section 4.3).
bool IsStructureOp(OpKind kind);

// Operator attributes; which fields are meaningful depends on OpKind.
struct Attrs {
  int64_t k = 0;                        // fanout / layer width
  int axis = 0;                         // reduction / broadcast axis
  BinaryOp bop = BinaryOp::kMul;        // elementwise operator
  float scalar = 0.0f;                  // scalar operand
  float p = 1.0f, q = 1.0f;             // node2vec parameters
  bool flag = false;                    // op-specific boolean (e.g. SDDMM mul)
  sparse::Format format = sparse::Format::kCsc;  // layout annotation target
  std::string name;                     // input binding name
  std::vector<sparse::EdgeMapStage> stages;      // fused edge-map pipeline
};

struct Node {
  int id = -1;
  OpKind kind = OpKind::kGraphInput;
  std::vector<int> inputs;
  Attrs attrs;

  // --- Annotations maintained by the passes ---
  // Batch-invariant: value depends only on graph/tensor inputs, so the
  // pre-processing pass may evaluate it once at compile time (Section 4.2).
  bool invariant = false;
  // Layout annotation (structure-producing ops): materialize exactly this
  // output format; unset means "whatever the kernel produced".
  bool has_format_choice = false;
  sparse::Format chosen_format = sparse::Format::kCsc;
  // Layout annotation: compact rows of the output (Section 4.3).
  bool compact_rows = false;

  ValueKind output_kind() const { return OutputKindOf(kind); }
};

class Program {
 public:
  // Appends a node; inputs must reference earlier nodes (the node list is
  // always topologically ordered).
  int Add(OpKind kind, std::vector<int> inputs, Attrs attrs = {});

  Node& node(int id) { return nodes_[static_cast<size_t>(id)]; }
  const Node& node(int id) const { return nodes_[static_cast<size_t>(id)]; }
  int size() const { return static_cast<int>(nodes_.size()); }

  std::vector<Node>& nodes() { return nodes_; }
  const std::vector<Node>& nodes() const { return nodes_; }

  const std::vector<int>& outputs() const { return outputs_; }
  void SetOutputs(std::vector<int> outputs) { outputs_ = std::move(outputs); }

  // Consumer counts (recomputed on demand after rewrites).
  std::vector<int> UseCounts() const;

  // Structural checks: topological input order, arity, and value-kind
  // agreement for every operator. Throws gs::Error on violations.
  void Verify() const;

  // Human-readable listing (one node per line).
  std::string ToString() const;

  // Removes nodes unreachable from the outputs, remapping ids. Returns the
  // number of nodes removed. (Used by the DCE pass and after rewrites.)
  int RemoveDead();

  // Re-sorts nodes topologically (stable on original ids) and remaps all
  // references. Passes that append nodes and rewire earlier consumers call
  // this to restore the inputs-before-users invariant.
  void Normalize();

 private:
  std::vector<Node> nodes_;
  std::vector<int> outputs_;
};

}  // namespace gs::core

#endif  // GSAMPLER_CORE_IR_H_
