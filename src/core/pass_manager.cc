#include "core/pass_manager.h"

#include <cstdlib>
#include <map>
#include <mutex>
#include <sstream>
#include <string>
#include <utility>

#include "common/error.h"
#include "common/logging.h"
#include "common/timer.h"
#include "device/device.h"

namespace gs::core {

std::string PassStats::ToString() const {
  std::ostringstream out;
  out << name << ": rewrites=" << rewrites << " nodes=" << nodes_before << "->" << nodes_after
      << " wall_us=" << wall_ns / 1000;
  if (virtual_ns > 0) {
    out << " virtual_us=" << virtual_ns / 1000;
  }
  return out.str();
}

bool EnvFlagEnabled(const char* name) {
  static std::mutex mutex;
  static std::map<std::string, bool> cache;
  std::lock_guard<std::mutex> lock(mutex);
  auto [it, inserted] = cache.emplace(name, false);
  if (inserted) {
    it->second = std::getenv(name) != nullptr;
  }
  return it->second;
}

bool PassVerificationEnabled(bool flag) {
#if !defined(NDEBUG)
  (void)flag;
  return true;
#else
  return flag || EnvFlagEnabled("GS_VERIFY_PASSES");
#endif
}

void PassManager::Register(std::string name, PassFn fn) {
  GS_CHECK(fn != nullptr) << "pass " << name << " has no body";
  passes_.push_back({std::move(name), std::move(fn)});
}

std::vector<std::string> PassManager::names() const {
  std::vector<std::string> out;
  out.reserve(passes_.size());
  for (const Entry& pass : passes_) {
    out.push_back(pass.name);
  }
  return out;
}

PassStats PassManager::RunOne(const std::string& name, Program& program,
                              const PassManagerOptions& options, const PassFn& fn) {
  PassStats stats;
  stats.name = name;
  stats.nodes_before = program.size();
  const int64_t virtual_before = device::Current().stream().counters().virtual_ns;
  Timer timer;
  stats.rewrites = fn(program);
  stats.wall_ns = timer.ElapsedNanos();
  stats.virtual_ns = device::Current().stream().counters().virtual_ns - virtual_before;
  stats.nodes_after = program.size();
  if (PassVerificationEnabled(options.verify)) {
    try {
      program.Verify();
    } catch (const Error& e) {
      GS_CHECK(false) << "program invalid after pass '" << name << "': " << e.what();
    }
    stats.verified = true;
  }
  if (options.dump_ir) {
    if (options.dump_sink != nullptr) {
      options.dump_sink(stats, program);
    } else {
      GS_LOG(Debug) << "after " << stats.ToString() << "\n" << program.ToString();
    }
  }
  return stats;
}

void PassManager::Run(Program& program, const PassManagerOptions& options,
                      std::vector<PassStats>* stats) const {
  int executed = 0;
  for (const Entry& pass : passes_) {
    if (options.pass_limit >= 0 && executed >= options.pass_limit) {
      break;
    }
    PassStats s = RunOne(pass.name, program, options, pass.fn);
    ++executed;
    if (stats != nullptr) {
      stats->push_back(std::move(s));
    }
  }
}

}  // namespace gs::core
