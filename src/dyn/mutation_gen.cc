#include "dyn/mutation_gen.h"

#include <cmath>
#include <utility>

#include "common/error.h"

namespace gs::dyn {

MutationGen::MutationGen(MutationGenOptions options)
    : options_(options), rng_(options.seed) {
  GS_CHECK_GT(options_.num_nodes, 1);
  if (options_.feature_updates_per_batch > 0) {
    GS_CHECK_GT(options_.feature_dim, 0);
  }
}

int32_t MutationGen::DrawNode() {
  if (options_.skew <= 0.0) {
    return static_cast<int32_t>(rng_.UniformInt(static_cast<uint64_t>(options_.num_nodes)));
  }
  // Power-ish skew: raise a uniform draw to (1 + skew), compressing mass
  // toward id 0.
  const double u = rng_.Uniform();
  const double biased = std::pow(u, 1.0 + options_.skew);
  const auto id = static_cast<int64_t>(biased * static_cast<double>(options_.num_nodes));
  return static_cast<int32_t>(std::min<int64_t>(id, options_.num_nodes - 1));
}

graph::MutationBatch MutationGen::Next() {
  graph::MutationBatch batch;
  batch.add_edges.reserve(static_cast<size_t>(options_.adds_per_batch));
  for (int64_t i = 0; i < options_.adds_per_batch; ++i) {
    graph::EdgeAdd e;
    e.src = DrawNode();
    e.dst = DrawNode();
    e.weight = options_.weighted ? 0.5f + rng_.UniformF() : 1.0f;
    batch.add_edges.push_back(e);
    if (e.src != e.dst) {
      added_.emplace_back(e.src, e.dst);
    }
  }
  for (int64_t i = 0; i < options_.removes_per_batch; ++i) {
    // 3/4 of removals target a previously added edge (a real deletion);
    // the rest are random pairs, exercising the remove-missing no-op.
    if (!added_.empty() && rng_.UniformInt(4) != 0) {
      const size_t pick = static_cast<size_t>(rng_.UniformInt(added_.size()));
      batch.remove_edges.push_back(added_[pick]);
      added_[pick] = added_.back();
      added_.pop_back();
    } else {
      batch.remove_edges.emplace_back(DrawNode(), DrawNode());
    }
  }
  for (int64_t i = 0; i < options_.feature_updates_per_batch; ++i) {
    graph::FeatureUpdate u;
    u.node = DrawNode();
    u.row.resize(static_cast<size_t>(options_.feature_dim));
    for (float& v : u.row) {
      v = static_cast<float>(rng_.Gaussian());
    }
    batch.update_features.push_back(std::move(u));
  }
  ++batches_;
  return batch;
}

}  // namespace gs::dyn
