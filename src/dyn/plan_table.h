// gs::dyn::PlanTable — epoch-aware compiled-plan reuse under mutations.
//
// The serving PlanCache keys sessions by (algorithm, dataset, ..., graph
// epoch/digest), so every mutation epoch is a fresh cache key — correct,
// but recompiling every plan from scratch at every epoch would put the full
// pass pipeline + calibration on the serving path. The PlanTable is the
// epoch-INDEPENDENT compile table behind it: one entry per compile key
// (everything in the plan key except the graph version) holding the frozen
// CompiledPlan plus the epoch it was calibrated against.
//
// On a session-cache miss for a new epoch, Judge() compares the entry's
// validity predicate (core::PlanValidity, bound at calibration) against the
// new snapshot's degree distribution:
//   kMiss    -> no entry: compile on the miss path (cold start, as today).
//   kValid   -> distribution still within bounds: rebuild a session over
//               the EXISTING frozen plan (no passes, no calibration — the
//               cheap path that makes epochs O(warmup), not O(compile)).
//   kDrifted -> bounds violated: the stale plan may still SERVE (results
//               stay correct — layout decisions affect cost, not values),
//               but a recompile should be scheduled (dyn::Replanner).
//
// Thread-safe: serving workers judge/lookup while the replanner publishes.

#ifndef GSAMPLER_DYN_PLAN_TABLE_H_
#define GSAMPLER_DYN_PLAN_TABLE_H_

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "core/plan.h"
#include "graph/store.h"

namespace gs::dyn {

enum class PlanJudgment {
  kMiss,
  kValid,
  kDrifted,
};

const char* PlanJudgmentName(PlanJudgment judgment);

struct PlanTableStats {
  int64_t entries = 0;
  int64_t judged_valid = 0;
  int64_t judged_drifted = 0;
  int64_t judged_miss = 0;
  int64_t publishes = 0;  // Publish() calls (initial compiles + recompiles)
};

class PlanTable {
 public:
  struct Entry {
    std::shared_ptr<core::CompiledPlan> plan;
    uint64_t epoch = 0;    // epoch the plan was calibrated against
    uint64_t digest = 0;   // that epoch's graph digest
  };

  // Judges `key` against `snapshot`'s distribution. On kValid/kDrifted
  // fills `entry` (optional) with the resident plan; on kDrifted fills
  // `why` (optional) with the violated bound.
  PlanJudgment Judge(const std::string& key, const graph::Snapshot& snapshot,
                     Entry* entry = nullptr, std::string* why = nullptr);

  // Publishes (or replaces) the entry for `key`: a plan calibrated against
  // `snapshot`. The plan must be frozen (shared across threads).
  void Publish(const std::string& key, std::shared_ptr<core::CompiledPlan> plan,
               const graph::Snapshot& snapshot);

  // The resident entry, if any (no judgment counters touched).
  bool Lookup(const std::string& key, Entry* entry) const;

  PlanTableStats stats() const;

 private:
  mutable std::mutex mutex_;
  std::map<std::string, Entry> entries_;
  PlanTableStats stats_;
};

}  // namespace gs::dyn

#endif  // GSAMPLER_DYN_PLAN_TABLE_H_
