// gs::dyn::Replanner — background recompilation worker.
//
// When a mutation epoch drifts a plan past its validity bounds, the right
// response is never to stall serving: the stale plan keeps answering (its
// results are still correct — layout calibration affects cost, not values)
// while a fresh compile runs here, off the serving path. The replanner is
// one background thread over a deduplicating job queue: a job is (compile
// key, snapshot); re-enqueueing a key that is already queued just advances
// its snapshot to the newest epoch (compiling against a superseded epoch
// would be wasted work). The owner supplies the CompileFn — serving's closes
// over its endpoint registry, plan table, and session cache.
//
// Stop() drains nothing (shutdown is immediate after the in-flight job);
// Drain() blocks until the queue is empty and the worker is idle — the
// hook tests and the mutation soak use to assert convergence.

#ifndef GSAMPLER_DYN_REPLANNER_H_
#define GSAMPLER_DYN_REPLANNER_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>

#include "graph/store.h"

namespace gs::dyn {

struct ReplannerStats {
  int64_t enqueued = 0;
  int64_t deduped = 0;  // enqueues that advanced an already-queued job
  int64_t compiled = 0;
  int64_t failures = 0;  // CompileFn threw (logged, never fatal)
};

class Replanner {
 public:
  // Compiles `key` against `snapshot` and publishes the result wherever the
  // owner keeps plans. Runs on the replanner thread; exceptions are caught
  // and counted as failures.
  using CompileFn =
      std::function<void(const std::string& key, std::shared_ptr<const graph::Snapshot> snapshot)>;

  explicit Replanner(CompileFn compile);
  ~Replanner();

  Replanner(const Replanner&) = delete;
  Replanner& operator=(const Replanner&) = delete;

  void Start();
  void Stop();
  bool running() const { return running_; }

  // Schedules a recompile of `key` against `snapshot`. Deduplicates by key:
  // a queued job is advanced to the newer snapshot instead of queueing
  // twice. Callable from any thread (serving workers, store listeners).
  void Enqueue(const std::string& key, std::shared_ptr<const graph::Snapshot> snapshot);

  // Blocks until every queued job has run and the worker is idle.
  void Drain();

  ReplannerStats stats() const;

 private:
  void WorkerLoop();

  CompileFn compile_;
  mutable std::mutex mutex_;
  std::condition_variable cv_;       // wakes the worker
  std::condition_variable idle_cv_;  // wakes Drain
  std::deque<std::string> queue_;    // FIFO of keys
  std::map<std::string, std::shared_ptr<const graph::Snapshot>> pending_;  // key -> newest snapshot
  bool in_flight_ = false;
  bool stop_ = false;
  bool running_ = false;
  ReplannerStats stats_;
  std::thread worker_;
};

}  // namespace gs::dyn

#endif  // GSAMPLER_DYN_REPLANNER_H_
