// gs::dyn::MutationGen — deterministic random mutation streams.
//
// The mutation-side counterpart of gs::fault's fault plans: a seeded
// generator producing MutationBatches for the correctness and soak
// harnesses (fuzz_passes --mutate, gsampler_cli --mutate-stream, the
// TSan mutation soak, bench/mutation_throughput). Removals draw from the
// edges this generator previously added (so they actually delete something)
// with a fallback to random pairs (exercising the remove-missing no-op
// path); identical (seed, options) always produce the identical stream.

#ifndef GSAMPLER_DYN_MUTATION_GEN_H_
#define GSAMPLER_DYN_MUTATION_GEN_H_

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "graph/store.h"

namespace gs::dyn {

struct MutationGenOptions {
  uint64_t seed = 0x5EED;
  int64_t num_nodes = 0;  // id range for generated endpoints (required)
  int64_t adds_per_batch = 32;
  int64_t removes_per_batch = 8;
  int64_t feature_updates_per_batch = 0;
  int64_t feature_dim = 0;  // required when feature_updates_per_batch > 0
  // Emit weights with added edges (only meaningful for weighted stores).
  bool weighted = false;
  // Bias edge endpoints toward low node ids (approximates the power-law
  // hot-set that makes hub-membership predicates interesting). 0 = uniform.
  double skew = 0.0;
};

class MutationGen {
 public:
  explicit MutationGen(MutationGenOptions options);

  // The next batch in the stream. Deterministic in (seed, call index).
  graph::MutationBatch Next();

  int64_t batches_generated() const { return batches_; }

 private:
  int32_t DrawNode();

  MutationGenOptions options_;
  Rng rng_;
  int64_t batches_ = 0;
  // Edges added so far and not yet chosen for removal — the removal pool.
  std::vector<std::pair<int32_t, int32_t>> added_;
};

}  // namespace gs::dyn

#endif  // GSAMPLER_DYN_MUTATION_GEN_H_
