#include "dyn/plan_table.h"

#include <utility>

#include "common/error.h"

namespace gs::dyn {

const char* PlanJudgmentName(PlanJudgment judgment) {
  switch (judgment) {
    case PlanJudgment::kMiss:
      return "miss";
    case PlanJudgment::kValid:
      return "valid";
    case PlanJudgment::kDrifted:
      return "drifted";
  }
  return "unknown";
}

PlanJudgment PlanTable::Judge(const std::string& key, const graph::Snapshot& snapshot,
                              Entry* entry, std::string* why) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = entries_.find(key);
  if (it == entries_.end()) {
    ++stats_.judged_miss;
    return PlanJudgment::kMiss;
  }
  if (entry != nullptr) {
    *entry = it->second;
  }
  // Same epoch, or a predicate still within bounds: the plan is valid as-is.
  if (it->second.epoch == snapshot.epoch() ||
      it->second.plan->validity().CheckAgainst(snapshot.degree_stats(), why)) {
    ++stats_.judged_valid;
    return PlanJudgment::kValid;
  }
  ++stats_.judged_drifted;
  return PlanJudgment::kDrifted;
}

void PlanTable::Publish(const std::string& key, std::shared_ptr<core::CompiledPlan> plan,
                        const graph::Snapshot& snapshot) {
  GS_CHECK(plan != nullptr);
  GS_CHECK(plan->frozen()) << "published plans must be frozen";
  std::lock_guard<std::mutex> lock(mutex_);
  entries_[key] = Entry{std::move(plan), snapshot.epoch(), snapshot.digest()};
  ++stats_.publishes;
  stats_.entries = static_cast<int64_t>(entries_.size());
}

bool PlanTable::Lookup(const std::string& key, Entry* entry) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = entries_.find(key);
  if (it == entries_.end()) {
    return false;
  }
  if (entry != nullptr) {
    *entry = it->second;
  }
  return true;
}

PlanTableStats PlanTable::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

}  // namespace gs::dyn
