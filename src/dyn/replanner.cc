#include "dyn/replanner.h"

#include <utility>

#include "common/error.h"
#include "common/logging.h"

namespace gs::dyn {

Replanner::Replanner(CompileFn compile) : compile_(std::move(compile)) {
  GS_CHECK(compile_ != nullptr);
}

Replanner::~Replanner() { Stop(); }

void Replanner::Start() {
  std::lock_guard<std::mutex> lock(mutex_);
  if (running_) {
    return;
  }
  stop_ = false;
  running_ = true;
  worker_ = std::thread([this] { WorkerLoop(); });
}

void Replanner::Stop() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (!running_) {
      return;
    }
    stop_ = true;
  }
  cv_.notify_all();
  worker_.join();
  std::lock_guard<std::mutex> lock(mutex_);
  running_ = false;
}

void Replanner::Enqueue(const std::string& key,
                        std::shared_ptr<const graph::Snapshot> snapshot) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    ++stats_.enqueued;
    auto it = pending_.find(key);
    if (it != pending_.end()) {
      // Already queued: advance to the newest snapshot, don't queue twice.
      if (snapshot->epoch() > it->second->epoch()) {
        it->second = std::move(snapshot);
      }
      ++stats_.deduped;
      return;
    }
    pending_[key] = std::move(snapshot);
    queue_.push_back(key);
  }
  cv_.notify_one();
}

void Replanner::Drain() {
  std::unique_lock<std::mutex> lock(mutex_);
  idle_cv_.wait(lock, [this] { return (queue_.empty() && !in_flight_) || stop_; });
}

void Replanner::WorkerLoop() {
  std::unique_lock<std::mutex> lock(mutex_);
  while (true) {
    cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
    if (stop_) {
      idle_cv_.notify_all();
      return;
    }
    const std::string key = queue_.front();
    queue_.pop_front();
    auto it = pending_.find(key);
    GS_INTERNAL(it != pending_.end());
    std::shared_ptr<const graph::Snapshot> snapshot = std::move(it->second);
    pending_.erase(it);
    in_flight_ = true;
    lock.unlock();
    try {
      compile_(key, snapshot);
      lock.lock();
      ++stats_.compiled;
    } catch (const std::exception& e) {
      GS_LOG(Warning) << "replanner: recompile of '" << key << "' at epoch "
                   << snapshot->epoch() << " failed: " << e.what();
      lock.lock();
      ++stats_.failures;
    }
    in_flight_ = false;
    if (queue_.empty()) {
      idle_cv_.notify_all();
    }
  }
}

ReplannerStats Replanner::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

}  // namespace gs::dyn
