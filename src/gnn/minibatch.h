// Mini-batch containers bridging sampler outputs to the trainer — the
// analogue of the paper's to_dgl_graph/to_pyg_graph conversion (Section
// 4.5): a list of per-layer sampled matrices ordered from the seeds outward
// (layers[0]'s columns are the seed nodes).

#ifndef GSAMPLER_GNN_MINIBATCH_H_
#define GSAMPLER_GNN_MINIBATCH_H_

#include <vector>

#include "core/executor.h"
#include "sparse/matrix.h"
#include "tensor/tensor.h"

namespace gs::gnn {

struct MiniBatch {
  // layers[l]: sampled bipartite matrix of layer l (columns = that layer's
  // target nodes, rows = sampled source nodes, original-graph ids via the
  // matrices' id maps).
  std::vector<sparse::Matrix> layers;
  // Seed (output) node ids of the batch.
  tensor::IdArray seeds;

  // Optional prefetched state filled by ExtractFeatures (the pipeline's
  // feature-extract stage). When present, model Forward passes reuse these
  // instead of recomputing node lists / re-gathering feature rows.
  std::vector<tensor::IdArray> lists;  // NodeLists(*this), empty if not prefetched
  tensor::Tensor x_deep;               // features gathered at lists.back()
  tensor::Tensor x_mid;                // features gathered at lists[1] (SAGE only)
};

// Builds a MiniBatch from a sampling program whose outputs are the
// per-layer matrices (in seed-to-depth order) followed by the final
// frontier ids, i.e. the shape produced by the algorithm factories.
MiniBatch FromSamplerOutputs(const std::vector<core::Value>& outputs,
                             const tensor::IdArray& seeds);

// Per-layer node lists of a batch: lists[0] = seeds, lists[l] = column ids
// of layer l for l >= 1, plus the deepest layer's row (source) ids last.
std::vector<tensor::IdArray> NodeLists(const MiniBatch& batch);

// Feature-extract stage: computes batch.lists and gathers the input-feature
// rows the models need (x_deep always; x_mid only when `gather_mid`, i.e.
// for SAGE-style models that also use features at node list 1). Kernel
// costs are charged to the calling thread's current stream, so under the
// pipeline executor this work lands on the feature stage's timeline.
void ExtractFeatures(MiniBatch& batch, const tensor::Tensor& features, bool gather_mid);

}  // namespace gs::gnn

#endif  // GSAMPLER_GNN_MINIBATCH_H_
