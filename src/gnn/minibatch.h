// Mini-batch containers bridging sampler outputs to the trainer — the
// analogue of the paper's to_dgl_graph/to_pyg_graph conversion (Section
// 4.5): a list of per-layer sampled matrices ordered from the seeds outward
// (layers[0]'s columns are the seed nodes).

#ifndef GSAMPLER_GNN_MINIBATCH_H_
#define GSAMPLER_GNN_MINIBATCH_H_

#include <vector>

#include "core/executor.h"
#include "sparse/matrix.h"
#include "tensor/tensor.h"

namespace gs::gnn {

struct MiniBatch {
  // layers[l]: sampled bipartite matrix of layer l (columns = that layer's
  // target nodes, rows = sampled source nodes, original-graph ids via the
  // matrices' id maps).
  std::vector<sparse::Matrix> layers;
  // Seed (output) node ids of the batch.
  tensor::IdArray seeds;
};

// Builds a MiniBatch from a sampling program whose outputs are the
// per-layer matrices (in seed-to-depth order) followed by the final
// frontier ids, i.e. the shape produced by the algorithm factories.
MiniBatch FromSamplerOutputs(const std::vector<core::Value>& outputs,
                             const tensor::IdArray& seeds);

}  // namespace gs::gnn

#endif  // GSAMPLER_GNN_MINIBATCH_H_
