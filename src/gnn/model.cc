#include "gnn/model.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"
#include "device/device.h"
#include "device/stream.h"
#include "sparse/kernels.h"
#include "tensor/ops.h"

namespace gs::gnn {
namespace {

using device::KernelScope;
using sparse::Matrix;
using tensor::IdArray;
using tensor::Tensor;

device::Stream& CurrentStream() { return device::Current().stream(); }

// Finds the position of `global` in the source node list backing a layer's
// rows: direct index for compact rows aligned with the list, binary search
// in the (sorted) list otherwise.
struct SourceIndex {
  SourceIndex(const Matrix& m, const IdArray& src_list)
      : matrix(&m), list(&src_list) {
    aligned = m.rows_compact() && m.num_rows() == src_list.size() && m.has_row_ids() &&
              std::equal(m.row_ids().data(), m.row_ids().data() + m.num_rows(),
                         src_list.data());
  }

  int64_t OfRow(int32_t local_row) const {
    if (aligned) {
      return local_row;
    }
    const int32_t global = matrix->GlobalRowId(local_row);
    const int32_t* begin = list->data();
    const int32_t* end = begin + list->size();
    const int32_t* it = std::lower_bound(begin, end, global);
    GS_CHECK(it != end && *it == global)
        << "source node " << global << " missing from the layer's node list";
    return it - begin;
  }

  const Matrix* matrix;
  const IdArray* list;
  bool aligned;
};

// Mean aggregation: out[c] = mean over edges (r, c) of h_src[pos(r)].
// Returns per-column counts for the backward pass.
Tensor MeanAggregate(const Matrix& m, const Tensor& h_src, const IdArray& src_list,
                     std::vector<float>& counts) {
  const sparse::Compressed& csc = m.Csc();
  const int64_t d = h_src.cols();
  KernelScope kernel(CurrentStream());
  Tensor out = Tensor::Zeros({m.num_cols(), d});
  counts.assign(static_cast<size_t>(m.num_cols()), 0.0f);
  SourceIndex index(m, src_list);
  for (int64_t c = 0; c < m.num_cols(); ++c) {
    for (int64_t e = csc.indptr[c]; e < csc.indptr[c + 1]; ++e) {
      const float* src = h_src.data() + index.OfRow(csc.indices[e]) * d;
      float* dst = out.data() + c * d;
      for (int64_t j = 0; j < d; ++j) {
        dst[j] += src[j];
      }
      counts[static_cast<size_t>(c)] += 1.0f;
    }
    if (counts[static_cast<size_t>(c)] > 0.0f) {
      const float inv = 1.0f / counts[static_cast<size_t>(c)];
      float* dst = out.data() + c * d;
      for (int64_t j = 0; j < d; ++j) {
        dst[j] *= inv;
      }
    }
  }
  kernel.Finish({.dense = true, .parallel_items = m.nnz() * d,
                 .hbm_bytes = (m.nnz() + m.num_cols()) * d * int64_t{4}});
  return out;
}

// Backward of MeanAggregate: dh_src[pos(r)] += dOut[c] / count[c].
void MeanAggregateBackward(const Matrix& m, const Tensor& d_out, const IdArray& src_list,
                           const std::vector<float>& counts, Tensor& d_src) {
  const sparse::Compressed& csc = m.Csc();
  const int64_t d = d_out.cols();
  KernelScope kernel(CurrentStream());
  SourceIndex index(m, src_list);
  for (int64_t c = 0; c < m.num_cols(); ++c) {
    if (counts[static_cast<size_t>(c)] <= 0.0f) {
      continue;
    }
    const float inv = 1.0f / counts[static_cast<size_t>(c)];
    const float* grad = d_out.data() + c * d;
    for (int64_t e = csc.indptr[c]; e < csc.indptr[c + 1]; ++e) {
      float* dst = d_src.data() + index.OfRow(csc.indices[e]) * d;
      for (int64_t j = 0; j < d; ++j) {
        dst[j] += grad[j] * inv;
      }
    }
  }
  kernel.Finish({.dense = true, .parallel_items = m.nnz() * d, .hbm_bytes = 2 * m.nnz() * d * int64_t{4}});
}

// Weighted aggregation (GCN over LADIES-adjusted weights): out[c] = sum over
// edges of w_e * h_src[pos(r)].
Tensor WeightedAggregate(const Matrix& m, const Tensor& h_src, const IdArray& src_list) {
  const sparse::Compressed& csc = m.Csc();
  const sparse::ValueArray values = m.ValuesFor(sparse::Format::kCsc);
  const int64_t d = h_src.cols();
  KernelScope kernel(CurrentStream());
  Tensor out = Tensor::Zeros({m.num_cols(), d});
  SourceIndex index(m, src_list);
  for (int64_t c = 0; c < m.num_cols(); ++c) {
    for (int64_t e = csc.indptr[c]; e < csc.indptr[c + 1]; ++e) {
      const float w = values[e];
      const float* src = h_src.data() + index.OfRow(csc.indices[e]) * d;
      float* dst = out.data() + c * d;
      for (int64_t j = 0; j < d; ++j) {
        dst[j] += w * src[j];
      }
    }
  }
  kernel.Finish({.dense = true, .parallel_items = m.nnz() * d,
                 .hbm_bytes = (m.nnz() + m.num_cols()) * d * int64_t{4}});
  return out;
}

void WeightedAggregateBackward(const Matrix& m, const Tensor& d_out, const IdArray& src_list,
                               Tensor& d_src) {
  const sparse::Compressed& csc = m.Csc();
  const sparse::ValueArray values = m.ValuesFor(sparse::Format::kCsc);
  const int64_t d = d_out.cols();
  KernelScope kernel(CurrentStream());
  SourceIndex index(m, src_list);
  for (int64_t c = 0; c < m.num_cols(); ++c) {
    const float* grad = d_out.data() + c * d;
    for (int64_t e = csc.indptr[c]; e < csc.indptr[c + 1]; ++e) {
      const float w = values[e];
      float* dst = d_src.data() + index.OfRow(csc.indices[e]) * d;
      for (int64_t j = 0; j < d; ++j) {
        dst[j] += w * grad[j];
      }
    }
  }
  kernel.Finish({.dense = true, .parallel_items = m.nnz() * d, .hbm_bytes = 2 * m.nnz() * d * int64_t{4}});
}

// Horizontal concat [a | b].
Tensor ConcatCols(const Tensor& a, const Tensor& b) {
  GS_CHECK_EQ(a.rows(), b.rows());
  KernelScope kernel(CurrentStream());
  Tensor out = Tensor::Empty({a.rows(), a.cols() + b.cols()});
  for (int64_t r = 0; r < a.rows(); ++r) {
    std::copy_n(a.data() + r * a.cols(), a.cols(), out.data() + r * out.cols());
    std::copy_n(b.data() + r * b.cols(), b.cols(), out.data() + r * out.cols() + a.cols());
  }
  kernel.Finish({.dense = true, .parallel_items = out.numel(), .hbm_bytes = 2 * out.numel() * int64_t{4}});
  return out;
}

void SplitCols(const Tensor& cat, Tensor& a, Tensor& b) {
  KernelScope kernel(CurrentStream());
  for (int64_t r = 0; r < cat.rows(); ++r) {
    std::copy_n(cat.data() + r * cat.cols(), a.cols(), a.data() + r * a.cols());
    std::copy_n(cat.data() + r * cat.cols() + a.cols(), b.cols(), b.data() + r * b.cols());
  }
  kernel.Finish({.dense = true, .parallel_items = cat.numel(), .hbm_bytes = 2 * cat.numel() * int64_t{4}});
}

// Softmax cross-entropy: fills `d_logits` (already divided by batch size)
// and returns loss/accuracy.
StepStats SoftmaxCrossEntropy(const Tensor& logits, const device::Array<int32_t>& labels,
                              const IdArray& seeds, Tensor* d_logits) {
  KernelScope kernel(CurrentStream());
  StepStats stats;
  stats.count = logits.rows();
  const int64_t classes = logits.cols();
  double loss = 0.0;
  for (int64_t r = 0; r < logits.rows(); ++r) {
    const float* row = logits.data() + r * classes;
    float maxv = row[0];
    int64_t argmax = 0;
    for (int64_t c = 1; c < classes; ++c) {
      if (row[c] > maxv) {
        maxv = row[c];
        argmax = c;
      }
    }
    double total = 0.0;
    for (int64_t c = 0; c < classes; ++c) {
      total += std::exp(row[c] - maxv);
    }
    const int32_t label = labels[seeds[r]];
    GS_CHECK(label >= 0 && label < classes);
    loss += -(row[label] - maxv - std::log(total));
    if (argmax == label) {
      ++stats.correct;
    }
    if (d_logits != nullptr) {
      float* grad = d_logits->data() + r * classes;
      for (int64_t c = 0; c < classes; ++c) {
        grad[c] = static_cast<float>(std::exp(row[c] - maxv) / total) / logits.rows();
      }
      grad[label] -= 1.0f / static_cast<float>(logits.rows());
    }
  }
  stats.loss = static_cast<float>(loss / std::max<int64_t>(logits.rows(), 1));
  kernel.Finish({.dense = true, .parallel_items = logits.rows(), .hbm_bytes = 2 * logits.numel() * int64_t{4}});
  return stats;
}

Tensor ReluBackward(const Tensor& pre, const Tensor& grad) {
  KernelScope kernel(CurrentStream());
  Tensor out = Tensor::Empty(grad.shape());
  for (int64_t i = 0; i < grad.numel(); ++i) {
    out.at(i) = pre.at(i) > 0.0f ? grad.at(i) : 0.0f;
  }
  kernel.Finish({.dense = true, .parallel_items = grad.numel(), .hbm_bytes = 3 * grad.numel() * int64_t{4}});
  return out;
}

void SgdStep(Tensor& param, const Tensor& grad, float lr) {
  KernelScope kernel(CurrentStream());
  for (int64_t i = 0; i < param.numel(); ++i) {
    param.at(i) -= lr * grad.at(i);
  }
  kernel.Finish({.dense = true, .parallel_items = param.numel(), .hbm_bytes = 3 * param.numel() * int64_t{4}});
}

Tensor InitWeight(int64_t rows, int64_t cols, uint64_t seed) {
  Rng rng(seed);
  const float std = std::sqrt(2.0f / static_cast<float>(rows));
  return Tensor::Randn({rows, cols}, rng, std);
}

}  // namespace

// -------------------------------------------------------------- SageModel

struct SageModel::Activations {
  std::vector<IdArray> lists;
  Tensor x_deep;                     // features at the deepest node list
  Tensor x_mid;                      // features at node list 1
  Tensor cat1, pre1, h1;             // layer-1 intermediates (at list 1)
  std::vector<float> counts1;
  Tensor cat2, logits;               // output layer (at seeds)
  std::vector<float> counts2;
};

SageModel::SageModel(int64_t in_dim, int64_t hidden, int num_classes, uint64_t seed)
    : w1_(InitWeight(2 * in_dim, hidden, seed)),
      w2_(InitWeight(2 * hidden, num_classes, seed ^ 0x9E37u)) {}

SageModel::Activations SageModel::Forward(const MiniBatch& batch,
                                          const Tensor& features) const {
  GS_CHECK_EQ(batch.layers.size(), 2u) << "SageModel expects 2-layer batches";
  Activations a;
  a.lists = batch.lists.empty() ? NodeLists(batch) : batch.lists;
  const Matrix& s1 = batch.layers[0];  // cols = seeds,   rows in lists[1] ∪ ...
  const Matrix& s2 = batch.layers[1];  // cols = lists[1], rows in lists[2]

  // Layer 1: representations for every node in lists[1], prefetched by the
  // pipeline's feature stage when available.
  a.x_deep = batch.x_deep.defined() ? batch.x_deep
                                    : tensor::GatherRows(features, a.lists[2]);
  a.x_mid = batch.x_mid.defined() ? batch.x_mid
                                  : tensor::GatherRows(features, a.lists[1]);
  Tensor neigh1 = MeanAggregate(s2, a.x_deep, a.lists[2], a.counts1);
  a.cat1 = ConcatCols(a.x_mid, neigh1);
  a.pre1 = tensor::MatMul(a.cat1, w1_);
  a.h1 = tensor::Relu(a.pre1);

  // Layer 2: logits at the seeds. Self representations come from lists[1]
  // (the seed-inclusive node list guarantees membership).
  Tensor h1_self = Tensor::Empty({s1.num_cols(), a.h1.cols()});
  {
    KernelScope kernel(CurrentStream());
    for (int64_t c = 0; c < s1.num_cols(); ++c) {
      const int32_t global = batch.seeds[c];
      const int32_t* begin = a.lists[1].data();
      const int32_t* end = begin + a.lists[1].size();
      const int32_t* it = std::lower_bound(begin, end, global);
      GS_CHECK(it != end && *it == global) << "seed missing from layer-1 node list";
      std::copy_n(a.h1.data() + (it - begin) * a.h1.cols(), a.h1.cols(),
                  h1_self.data() + c * a.h1.cols());
    }
    kernel.Finish({.dense = true, .parallel_items = s1.num_cols(),
                   .hbm_bytes = 2 * h1_self.numel() * int64_t{4}});
  }
  Tensor neigh2 = MeanAggregate(s1, a.h1, a.lists[1], a.counts2);
  a.cat2 = ConcatCols(h1_self, neigh2);
  a.logits = tensor::MatMul(a.cat2, w2_);
  return a;
}

StepStats SageModel::TrainStep(const MiniBatch& batch, const Tensor& features,
                               const device::Array<int32_t>& labels, float lr) {
  Activations a = Forward(batch, features);
  Tensor d_logits = Tensor::Empty(a.logits.shape());
  StepStats stats = SoftmaxCrossEntropy(a.logits, labels, batch.seeds, &d_logits);

  // Output layer gradients.
  Tensor d_w2 = tensor::MatMul(tensor::Transpose(a.cat2), d_logits);
  Tensor d_cat2 = tensor::MatMul(d_logits, tensor::Transpose(w2_));
  const int64_t hidden = a.h1.cols();
  Tensor d_h1_self = Tensor::Empty({a.cat2.rows(), hidden});
  Tensor d_neigh2 = Tensor::Empty({a.cat2.rows(), hidden});
  SplitCols(d_cat2, d_h1_self, d_neigh2);

  // Gradient w.r.t. layer-1 representations: scatter the self part at the
  // seeds' positions, backprop the neighbor part through the aggregation.
  Tensor d_h1 = Tensor::Zeros(a.h1.shape());
  {
    KernelScope kernel(CurrentStream());
    for (int64_t c = 0; c < batch.seeds.size(); ++c) {
      const int32_t* begin = a.lists[1].data();
      const int32_t* it =
          std::lower_bound(begin, begin + a.lists[1].size(), batch.seeds[c]);
      float* dst = d_h1.data() + (it - begin) * hidden;
      const float* src = d_h1_self.data() + c * hidden;
      for (int64_t j = 0; j < hidden; ++j) {
        dst[j] += src[j];
      }
    }
    kernel.Finish({.dense = true, .parallel_items = batch.seeds.size(),
                   .hbm_bytes = 2 * d_h1_self.numel() * int64_t{4}});
  }
  MeanAggregateBackward(batch.layers[0], d_neigh2, a.lists[1], a.counts2, d_h1);

  // Layer-1 gradients.
  Tensor d_pre1 = ReluBackward(a.pre1, d_h1);
  Tensor d_w1 = tensor::MatMul(tensor::Transpose(a.cat1), d_pre1);

  SgdStep(w1_, d_w1, lr);
  SgdStep(w2_, d_w2, lr);
  return stats;
}

StepStats SageModel::Evaluate(const MiniBatch& batch, const Tensor& features,
                              const device::Array<int32_t>& labels) {
  Activations a = Forward(batch, features);
  return SoftmaxCrossEntropy(a.logits, labels, batch.seeds, nullptr);
}

// --------------------------------------------------------------- GcnModel

struct GcnModel::Activations {
  std::vector<IdArray> lists;
  Tensor x_deep;
  Tensor agg1, pre1, h1;
  Tensor logits;
};

GcnModel::GcnModel(int64_t in_dim, int64_t hidden, int num_classes, uint64_t seed)
    : w1_(InitWeight(in_dim, hidden, seed)),
      w2_(InitWeight(hidden, num_classes, seed ^ 0x9E37u)) {}

GcnModel::Activations GcnModel::Forward(const MiniBatch& batch,
                                        const Tensor& features) const {
  GS_CHECK_EQ(batch.layers.size(), 2u) << "GcnModel expects 2-layer batches";
  Activations a;
  a.lists = batch.lists.empty() ? NodeLists(batch) : batch.lists;
  const Matrix& s1 = batch.layers[0];
  const Matrix& s2 = batch.layers[1];

  a.x_deep = batch.x_deep.defined() ? batch.x_deep
                                    : tensor::GatherRows(features, a.lists[2]);
  a.agg1 = WeightedAggregate(s2, a.x_deep, a.lists[2]);
  a.pre1 = tensor::MatMul(a.agg1, w1_);
  a.h1 = tensor::Relu(a.pre1);
  Tensor agg2 = WeightedAggregate(s1, a.h1, a.lists[1]);
  a.logits = tensor::MatMul(agg2, w2_);
  return a;
}

StepStats GcnModel::TrainStep(const MiniBatch& batch, const Tensor& features,
                              const device::Array<int32_t>& labels, float lr) {
  Activations a = Forward(batch, features);
  Tensor d_logits = Tensor::Empty(a.logits.shape());
  StepStats stats = SoftmaxCrossEntropy(a.logits, labels, batch.seeds, &d_logits);

  Tensor agg2 = WeightedAggregate(batch.layers[0], a.h1, a.lists[1]);
  Tensor d_w2 = tensor::MatMul(tensor::Transpose(agg2), d_logits);
  Tensor d_agg2 = tensor::MatMul(d_logits, tensor::Transpose(w2_));
  Tensor d_h1 = Tensor::Zeros(a.h1.shape());
  WeightedAggregateBackward(batch.layers[0], d_agg2, a.lists[1], d_h1);
  Tensor d_pre1 = ReluBackward(a.pre1, d_h1);
  Tensor d_w1 = tensor::MatMul(tensor::Transpose(a.agg1), d_pre1);

  SgdStep(w1_, d_w1, lr);
  SgdStep(w2_, d_w2, lr);
  return stats;
}

StepStats GcnModel::Evaluate(const MiniBatch& batch, const Tensor& features,
                             const device::Array<int32_t>& labels) {
  Activations a = Forward(batch, features);
  return SoftmaxCrossEntropy(a.logits, labels, batch.seeds, nullptr);
}

// ---------------------------------------------------- weight checkpointing

namespace {

std::vector<float> FlattenWeights(const Tensor& w1, const Tensor& w2) {
  std::vector<float> flat;
  flat.reserve(static_cast<size_t>(w1.numel() + w2.numel()));
  flat.insert(flat.end(), w1.data(), w1.data() + w1.numel());
  flat.insert(flat.end(), w2.data(), w2.data() + w2.numel());
  return flat;
}

void UnflattenWeights(const std::vector<float>& flat, Tensor& w1, Tensor& w2) {
  GS_CHECK_EQ(static_cast<int64_t>(flat.size()), w1.numel() + w2.numel())
      << "weight checkpoint does not match model shape";
  std::copy_n(flat.data(), w1.numel(), w1.data());
  std::copy_n(flat.data() + w1.numel(), w2.numel(), w2.data());
}

}  // namespace

std::vector<float> SageModel::SaveWeights() const { return FlattenWeights(w1_, w2_); }

void SageModel::LoadWeights(const std::vector<float>& flat) {
  UnflattenWeights(flat, w1_, w2_);
}

std::vector<float> GcnModel::SaveWeights() const { return FlattenWeights(w1_, w2_); }

void GcnModel::LoadWeights(const std::vector<float>& flat) {
  UnflattenWeights(flat, w1_, w2_);
}

}  // namespace gs::gnn
