// Minimal GNN models with manual backpropagation, sufficient to reproduce
// the end-to-end training experiment (Table 8): training compute runs
// through the same simulated-device kernels as sampling, so the
// sampling-vs-training time split (Table 1) falls out of the stream
// counters.
//
//  - SageModel: 2-layer GraphSAGE, mean aggregator, concat(self, neigh),
//    ReLU, softmax cross-entropy. Consumes uniform neighbor-sample batches
//    whose node lists include the seed nodes (algorithms::SageParams::
//    include_seeds).
//  - GcnModel: 2-layer weighted GCN consuming LADIES/FastGCN-style
//    layer-wise batches (edge weights = the algorithms' adjusted weights).

#ifndef GSAMPLER_GNN_MODEL_H_
#define GSAMPLER_GNN_MODEL_H_

#include <vector>

#include "gnn/minibatch.h"
#include "tensor/tensor.h"

namespace gs::gnn {

struct StepStats {
  float loss = 0.0f;
  int64_t correct = 0;
  int64_t count = 0;
};

class SageModel {
 public:
  SageModel(int64_t in_dim, int64_t hidden, int num_classes, uint64_t seed);

  // One SGD step on the batch; returns loss/accuracy stats.
  StepStats TrainStep(const MiniBatch& batch, const tensor::Tensor& features,
                      const device::Array<int32_t>& labels, float lr);
  // Forward-only evaluation.
  StepStats Evaluate(const MiniBatch& batch, const tensor::Tensor& features,
                     const device::Array<int32_t>& labels);

  // Flattened copy of the trainable weights (w1 then w2), for trainer
  // checkpoint/restore. LoadWeights requires a vector produced by
  // SaveWeights on an identically-shaped model.
  std::vector<float> SaveWeights() const;
  void LoadWeights(const std::vector<float>& flat);

 private:
  struct Activations;
  Activations Forward(const MiniBatch& batch, const tensor::Tensor& features) const;

  tensor::Tensor w1_;  // (2 * in_dim, hidden)
  tensor::Tensor w2_;  // (2 * hidden, classes)
};

class GcnModel {
 public:
  GcnModel(int64_t in_dim, int64_t hidden, int num_classes, uint64_t seed);

  StepStats TrainStep(const MiniBatch& batch, const tensor::Tensor& features,
                      const device::Array<int32_t>& labels, float lr);
  StepStats Evaluate(const MiniBatch& batch, const tensor::Tensor& features,
                     const device::Array<int32_t>& labels);

  // Flattened copy of the trainable weights (w1 then w2); see SageModel.
  std::vector<float> SaveWeights() const;
  void LoadWeights(const std::vector<float>& flat);

 private:
  struct Activations;
  Activations Forward(const MiniBatch& batch, const tensor::Tensor& features) const;

  tensor::Tensor w1_;  // (in_dim, hidden)
  tensor::Tensor w2_;  // (hidden, classes)
};

}  // namespace gs::gnn

#endif  // GSAMPLER_GNN_MODEL_H_
