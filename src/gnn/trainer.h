// Mini-batch training loop for the end-to-end experiments (Tables 1 and 8).
// The sampler is injected as a callback, so the same loop trains from
// gSampler's engine or any baseline; sampling and model time are split via
// the simulated device's virtual clock.

#ifndef GSAMPLER_GNN_TRAINER_H_
#define GSAMPLER_GNN_TRAINER_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "gnn/minibatch.h"
#include "gnn/model.h"
#include "graph/graph.h"
#include "pipeline/metrics.h"

namespace gs::gnn {

enum class ModelKind {
  kSage,  // GraphSAGE batches (uniform neighbor samples, seed-inclusive)
  kGcn,   // LADIES/FastGCN batches (weight-adjusted layer-wise samples)
};

// Resumable training state (gs::fault recovery ladder, rung 4). Captured
// when Train() is interrupted by a gs::Error mid-epoch and a checkpoint slot
// was supplied; feeding the same checkpoint back into Train() continues from
// the first incomplete step. Because every sample RNG stream is a pure
// function of (config.seed, epoch, step) — never of how far a previous run
// got — the resumed run's remaining steps, losses, and accuracies are
// bit-identical to an uninterrupted run. (Caveat: a fault thrown from inside
// a TrainStep weight update can leave the captured weights mid-step; the
// sampling/feature stages are the intended injection surface.)
struct TrainerCheckpoint {
  bool valid = false;
  int epoch = 0;     // epoch that was in progress
  int64_t step = 0;  // train batches completed within that epoch
  uint64_t seed = 0;  // config.seed at capture, checked on resume
  std::vector<float> weights;         // flattened model weights
  std::vector<float> step_loss;       // losses of all completed steps
  std::vector<float> epoch_accuracy;  // completed epochs' validation accuracy
};

struct TrainerConfig {
  ModelKind model = ModelKind::kSage;
  int epochs = 10;
  int64_t batch_size = 256;
  float learning_rate = 0.5f;
  int hidden = 64;
  double val_fraction = 0.2;
  uint64_t seed = 17;
  // Prefetch depth for the pipelined training loop (sample -> feature ->
  // train stages with bounded queues). 0 runs the stages synchronously on
  // the calling thread; any depth produces bit-identical samples and losses
  // — only the simulated timeline changes.
  int pipeline_depth = 0;
  // Optional checkpoint slot. When non-null: if `checkpoint->valid`, Train()
  // resumes from it instead of starting fresh; and if training is
  // interrupted by a gs::Error, the state is captured into it and Train()
  // returns (outcome.interrupted = true) instead of propagating.
  TrainerCheckpoint* checkpoint = nullptr;
};

struct TrainOutcome {
  // Virtual device time spent in the training loop, split by phase.
  double sample_ms = 0.0;
  double model_ms = 0.0;
  double total_ms = 0.0;
  double SamplingRatio() const { return total_ms > 0 ? sample_ms / total_ms : 0.0; }
  // Validation accuracy after the final epoch, and its per-epoch history.
  float final_accuracy = 0.0f;
  std::vector<float> epoch_accuracy;
  // Training loss of every step across all epochs, in step order (used by
  // the pipelined-vs-synchronous equivalence tests).
  std::vector<float> step_loss;
  // Per-stage pipeline metrics accumulated over all epochs.
  pipeline::Metrics pipeline;
  // Training stopped early on a gs::Error and state was captured into
  // config.checkpoint; `error` holds the message.
  bool interrupted = false;
  std::string error;
};

// Samples a mini-batch for the given seeds.
using SampleFn = std::function<MiniBatch(const tensor::IdArray& seeds, Rng& rng)>;

// Trains on g.train_ids() (split into train/validation); the graph must
// carry features and labels.
TrainOutcome Train(const graph::Graph& g, const SampleFn& sampler,
                   const TrainerConfig& config);

}  // namespace gs::gnn

#endif  // GSAMPLER_GNN_TRAINER_H_
