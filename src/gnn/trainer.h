// Mini-batch training loop for the end-to-end experiments (Tables 1 and 8).
// The sampler is injected as a callback, so the same loop trains from
// gSampler's engine or any baseline; sampling and model time are split via
// the simulated device's virtual clock.

#ifndef GSAMPLER_GNN_TRAINER_H_
#define GSAMPLER_GNN_TRAINER_H_

#include <functional>
#include <vector>

#include "gnn/minibatch.h"
#include "gnn/model.h"
#include "graph/graph.h"
#include "pipeline/metrics.h"

namespace gs::gnn {

enum class ModelKind {
  kSage,  // GraphSAGE batches (uniform neighbor samples, seed-inclusive)
  kGcn,   // LADIES/FastGCN batches (weight-adjusted layer-wise samples)
};

struct TrainerConfig {
  ModelKind model = ModelKind::kSage;
  int epochs = 10;
  int64_t batch_size = 256;
  float learning_rate = 0.5f;
  int hidden = 64;
  double val_fraction = 0.2;
  uint64_t seed = 17;
  // Prefetch depth for the pipelined training loop (sample -> feature ->
  // train stages with bounded queues). 0 runs the stages synchronously on
  // the calling thread; any depth produces bit-identical samples and losses
  // — only the simulated timeline changes.
  int pipeline_depth = 0;
};

struct TrainOutcome {
  // Virtual device time spent in the training loop, split by phase.
  double sample_ms = 0.0;
  double model_ms = 0.0;
  double total_ms = 0.0;
  double SamplingRatio() const { return total_ms > 0 ? sample_ms / total_ms : 0.0; }
  // Validation accuracy after the final epoch, and its per-epoch history.
  float final_accuracy = 0.0f;
  std::vector<float> epoch_accuracy;
  // Training loss of every step across all epochs, in step order (used by
  // the pipelined-vs-synchronous equivalence tests).
  std::vector<float> step_loss;
  // Per-stage pipeline metrics accumulated over all epochs.
  pipeline::Metrics pipeline;
};

// Samples a mini-batch for the given seeds.
using SampleFn = std::function<MiniBatch(const tensor::IdArray& seeds, Rng& rng)>;

// Trains on g.train_ids() (split into train/validation); the graph must
// carry features and labels.
TrainOutcome Train(const graph::Graph& g, const SampleFn& sampler,
                   const TrainerConfig& config);

}  // namespace gs::gnn

#endif  // GSAMPLER_GNN_TRAINER_H_
