#include "gnn/trainer.h"

#include <algorithm>
#include <memory>
#include <utility>

#include "common/error.h"
#include "device/device.h"
#include "pipeline/executor.h"

namespace gs::gnn {
namespace {

using tensor::IdArray;

std::vector<IdArray> MakeBatches(const IdArray& ids, int64_t begin, int64_t end,
                                 int64_t batch_size) {
  std::vector<IdArray> batches;
  for (int64_t b = begin; b < end; b += batch_size) {
    const int64_t stop = std::min(end, b + batch_size);
    IdArray batch = IdArray::Empty(stop - b);
    std::copy_n(ids.data() + b, stop - b, batch.data());
    batches.push_back(std::move(batch));
  }
  return batches;
}

}  // namespace

TrainOutcome Train(const graph::Graph& g, const SampleFn& sampler,
                   const TrainerConfig& config) {
  GS_CHECK(g.features().defined() && g.labels().defined())
      << "training needs features and labels";
  GS_CHECK_GT(g.num_classes(), 1);

  const IdArray& ids = g.train_ids();
  const int64_t val_count =
      std::max<int64_t>(1, static_cast<int64_t>(static_cast<double>(ids.size()) *
                                                config.val_fraction));
  const int64_t train_count = ids.size() - val_count;
  GS_CHECK_GT(train_count, 0);
  std::vector<IdArray> train_batches = MakeBatches(ids, 0, train_count, config.batch_size);
  std::vector<IdArray> val_batches =
      MakeBatches(ids, train_count, ids.size(), config.batch_size);

  std::unique_ptr<SageModel> sage;
  std::unique_ptr<GcnModel> gcn;
  if (config.model == ModelKind::kSage) {
    sage = std::make_unique<SageModel>(g.features().cols(), config.hidden, g.num_classes(),
                                       config.seed);
  } else {
    gcn = std::make_unique<GcnModel>(g.features().cols(), config.hidden, g.num_classes(),
                                     config.seed);
  }

  auto evaluate = [&](Rng& rng) {
    int64_t correct = 0;
    int64_t count = 0;
    for (const IdArray& batch_ids : val_batches) {
      MiniBatch batch = sampler(batch_ids, rng);
      StepStats s = sage != nullptr ? sage->Evaluate(batch, g.features(), g.labels())
                                    : gcn->Evaluate(batch, g.features(), g.labels());
      correct += s.correct;
      count += s.count;
    }
    return count > 0 ? static_cast<float>(correct) / static_cast<float>(count) : 0.0f;
  };

  TrainOutcome outcome;
  Rng rng(config.seed);

  // The training loop runs as a 3-stage pipeline: sample -> feature-extract
  // -> train, one worker thread per stage, bounded prefetch queues in
  // between. Items cycle through a slot ring sized for the maximum number
  // of batches in flight (stage s runs at most `depth` items ahead of its
  // consumer, so at most 2*depth+1 items are live at once). depth 0 runs
  // the same stages inline on this thread — same kernels, same order, same
  // results; only the simulated timeline differs.
  const int depth = std::max(config.pipeline_depth, 0);
  const size_t slot_count = static_cast<size_t>(2 * depth + 3);
  std::vector<MiniBatch> slots(slot_count);
  const bool gather_mid = config.model == ModelKind::kSage;
  int epoch = 0;        // captured by the stage closures, bumped per Run
  int64_t step_base = 0;  // first batch index of the current Run (resume offset)

  // Resume from a prior interrupted run. The sample RNG stream of batch b in
  // epoch e is rng.Fork(e * 131071 + b) — a pure function of (seed, e, b) —
  // so restarting mid-epoch reproduces exactly the batches an uninterrupted
  // run would have seen.
  int resume_epoch = 0;
  int64_t resume_step = 0;
  if (config.checkpoint != nullptr && config.checkpoint->valid) {
    const TrainerCheckpoint& cp = *config.checkpoint;
    GS_CHECK_EQ(cp.seed, config.seed) << "checkpoint was captured under a different seed";
    GS_CHECK(cp.epoch >= 0 && cp.epoch < config.epochs) << "checkpoint epoch out of range";
    GS_CHECK(cp.step >= 0 && cp.step <= static_cast<int64_t>(train_batches.size()))
        << "checkpoint step out of range";
    if (sage != nullptr) {
      sage->LoadWeights(cp.weights);
    } else {
      gcn->LoadWeights(cp.weights);
    }
    resume_epoch = cp.epoch;
    resume_step = cp.step;
    outcome.step_loss = cp.step_loss;
    outcome.epoch_accuracy = cp.epoch_accuracy;
  }

  std::vector<pipeline::Stage> stages;
  stages.push_back({"sample", [&](int64_t i) {
                      const int64_t b = step_base + i;
                      Rng batch_rng = rng.Fork(static_cast<uint64_t>(epoch) * 131071u +
                                               static_cast<uint64_t>(b));
                      slots[static_cast<size_t>(i) % slot_count] =
                          sampler(train_batches[static_cast<size_t>(b)], batch_rng);
                    }});
  stages.push_back({"feature", [&](int64_t i) {
                      ExtractFeatures(slots[static_cast<size_t>(i) % slot_count],
                                      g.features(), gather_mid);
                    }});
  stages.push_back({"train", [&](int64_t i) {
                      MiniBatch& batch = slots[static_cast<size_t>(i) % slot_count];
                      const StepStats s =
                          sage != nullptr
                              ? sage->TrainStep(batch, g.features(), g.labels(),
                                                config.learning_rate)
                              : gcn->TrainStep(batch, g.features(), g.labels(),
                                               config.learning_rate);
                      outcome.step_loss.push_back(s.loss);
                      batch = MiniBatch{};  // free the slot's sample + features
                    }});
  pipeline::Executor executor(std::move(stages), pipeline::Options{depth});

  for (epoch = resume_epoch; epoch < config.epochs; ++epoch) {
    step_base = epoch == resume_epoch ? resume_step : 0;
    const int64_t steps_at_start = static_cast<int64_t>(outcome.step_loss.size());
    try {
      const int64_t remaining = static_cast<int64_t>(train_batches.size()) - step_base;
      if (remaining > 0) {
        executor.Run(remaining);
      }
      // Validation runs outside the timed training loop.
      Rng eval_rng = rng.Fork(0xE0A1u + static_cast<uint64_t>(epoch));
      outcome.epoch_accuracy.push_back(evaluate(eval_rng));
    } catch (const Error& e) {
      if (config.checkpoint == nullptr) {
        throw;
      }
      // Capture resumable state. step_loss holds exactly the completed
      // TrainSteps (the train stage appends after each step), so the saved
      // weights correspond to `step` completed batches of this epoch.
      TrainerCheckpoint& cp = *config.checkpoint;
      cp.valid = true;
      cp.epoch = epoch;
      cp.step =
          step_base + (static_cast<int64_t>(outcome.step_loss.size()) - steps_at_start);
      cp.seed = config.seed;
      cp.weights = sage != nullptr ? sage->SaveWeights() : gcn->SaveWeights();
      cp.step_loss = outcome.step_loss;
      cp.epoch_accuracy = outcome.epoch_accuracy;
      outcome.interrupted = true;
      outcome.error = e.what();
      break;
    }
  }

  if (!outcome.interrupted && config.checkpoint != nullptr) {
    config.checkpoint->valid = false;  // consumed; a rerun starts fresh
  }
  outcome.pipeline = executor.metrics();
  const pipeline::Metrics& m = outcome.pipeline;
  outcome.sample_ms = m.stages[0].BusyMs();
  outcome.model_ms = m.stages[1].BusyMs() + m.stages[2].BusyMs();
  outcome.total_ms = m.EpochMs();
  outcome.final_accuracy =
      outcome.epoch_accuracy.empty() ? 0.0f : outcome.epoch_accuracy.back();
  return outcome;
}

}  // namespace gs::gnn
