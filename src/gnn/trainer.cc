#include "gnn/trainer.h"

#include <algorithm>
#include <memory>

#include "common/error.h"
#include "device/device.h"

namespace gs::gnn {
namespace {

using tensor::IdArray;

std::vector<IdArray> MakeBatches(const IdArray& ids, int64_t begin, int64_t end,
                                 int64_t batch_size) {
  std::vector<IdArray> batches;
  for (int64_t b = begin; b < end; b += batch_size) {
    const int64_t stop = std::min(end, b + batch_size);
    IdArray batch = IdArray::Empty(stop - b);
    std::copy_n(ids.data() + b, stop - b, batch.data());
    batches.push_back(std::move(batch));
  }
  return batches;
}

double VirtualMs() {
  return static_cast<double>(device::Current().stream().counters().virtual_ns) / 1e6;
}

}  // namespace

TrainOutcome Train(const graph::Graph& g, const SampleFn& sampler,
                   const TrainerConfig& config) {
  GS_CHECK(g.features().defined() && g.labels().defined())
      << "training needs features and labels";
  GS_CHECK_GT(g.num_classes(), 1);

  const IdArray& ids = g.train_ids();
  const int64_t val_count =
      std::max<int64_t>(1, static_cast<int64_t>(static_cast<double>(ids.size()) *
                                                config.val_fraction));
  const int64_t train_count = ids.size() - val_count;
  GS_CHECK_GT(train_count, 0);
  std::vector<IdArray> train_batches = MakeBatches(ids, 0, train_count, config.batch_size);
  std::vector<IdArray> val_batches =
      MakeBatches(ids, train_count, ids.size(), config.batch_size);

  std::unique_ptr<SageModel> sage;
  std::unique_ptr<GcnModel> gcn;
  if (config.model == ModelKind::kSage) {
    sage = std::make_unique<SageModel>(g.features().cols(), config.hidden, g.num_classes(),
                                       config.seed);
  } else {
    gcn = std::make_unique<GcnModel>(g.features().cols(), config.hidden, g.num_classes(),
                                     config.seed);
  }

  auto evaluate = [&](Rng& rng) {
    int64_t correct = 0;
    int64_t count = 0;
    for (const IdArray& batch_ids : val_batches) {
      MiniBatch batch = sampler(batch_ids, rng);
      StepStats s = sage != nullptr ? sage->Evaluate(batch, g.features(), g.labels())
                                    : gcn->Evaluate(batch, g.features(), g.labels());
      correct += s.correct;
      count += s.count;
    }
    return count > 0 ? static_cast<float>(correct) / static_cast<float>(count) : 0.0f;
  };

  TrainOutcome outcome;
  Rng rng(config.seed);
  for (int epoch = 0; epoch < config.epochs; ++epoch) {
    for (size_t b = 0; b < train_batches.size(); ++b) {
      Rng batch_rng = rng.Fork(static_cast<uint64_t>(epoch) * 131071u + b);
      const double t0 = VirtualMs();
      MiniBatch batch = sampler(train_batches[b], batch_rng);
      const double t1 = VirtualMs();
      if (sage != nullptr) {
        sage->TrainStep(batch, g.features(), g.labels(), config.learning_rate);
      } else {
        gcn->TrainStep(batch, g.features(), g.labels(), config.learning_rate);
      }
      const double t2 = VirtualMs();
      outcome.sample_ms += t1 - t0;
      outcome.model_ms += t2 - t1;
    }
    // Validation runs outside the timed training loop.
    Rng eval_rng = rng.Fork(0xE0A1u + static_cast<uint64_t>(epoch));
    outcome.epoch_accuracy.push_back(evaluate(eval_rng));
  }
  outcome.total_ms = outcome.sample_ms + outcome.model_ms;
  outcome.final_accuracy =
      outcome.epoch_accuracy.empty() ? 0.0f : outcome.epoch_accuracy.back();
  return outcome;
}

}  // namespace gs::gnn
