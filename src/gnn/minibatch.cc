#include "gnn/minibatch.h"

#include "common/error.h"

namespace gs::gnn {

MiniBatch FromSamplerOutputs(const std::vector<core::Value>& outputs,
                             const tensor::IdArray& seeds) {
  MiniBatch batch;
  batch.seeds = seeds;
  for (const core::Value& v : outputs) {
    if (v.kind == core::ValueKind::kMatrix) {
      batch.layers.push_back(v.matrix);
    }
  }
  GS_CHECK(!batch.layers.empty()) << "sampler produced no layer matrices";
  return batch;
}

}  // namespace gs::gnn
