#include "gnn/minibatch.h"

#include "common/error.h"
#include "sparse/kernels.h"
#include "tensor/ops.h"

namespace gs::gnn {

MiniBatch FromSamplerOutputs(const std::vector<core::Value>& outputs,
                             const tensor::IdArray& seeds) {
  MiniBatch batch;
  batch.seeds = seeds;
  for (const core::Value& v : outputs) {
    if (v.kind == core::ValueKind::kMatrix) {
      batch.layers.push_back(v.matrix);
    }
  }
  GS_CHECK(!batch.layers.empty()) << "sampler produced no layer matrices";
  return batch;
}

std::vector<tensor::IdArray> NodeLists(const MiniBatch& batch) {
  std::vector<tensor::IdArray> lists;
  lists.push_back(batch.seeds);
  for (size_t l = 1; l < batch.layers.size(); ++l) {
    lists.push_back(sparse::ColIds(batch.layers[l]));
  }
  lists.push_back(sparse::RowIds(batch.layers.back()));
  return lists;
}

void ExtractFeatures(MiniBatch& batch, const tensor::Tensor& features, bool gather_mid) {
  batch.lists = NodeLists(batch);
  batch.x_deep = tensor::GatherRows(features, batch.lists.back());
  if (gather_mid) {
    GS_CHECK_GE(batch.lists.size(), 2u);
    batch.x_mid = tensor::GatherRows(features, batch.lists[1]);
  }
}

}  // namespace gs::gnn
