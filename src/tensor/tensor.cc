#include "tensor/tensor.h"

namespace gs::tensor {
namespace {

int64_t NumelOf(const std::vector<int64_t>& shape) {
  GS_CHECK(!shape.empty() && shape.size() <= 2) << "tensors are 1-D or 2-D";
  int64_t n = 1;
  for (int64_t d : shape) {
    GS_CHECK_GE(d, 0);
    n *= d;
  }
  return n;
}

}  // namespace

Tensor Tensor::Empty(std::vector<int64_t> shape, device::MemorySpace space) {
  Tensor t;
  const int64_t n = NumelOf(shape);
  t.shape_ = std::move(shape);
  t.data_ = device::Array<float>::Empty(n, space);
  return t;
}

Tensor Tensor::Zeros(std::vector<int64_t> shape, device::MemorySpace space) {
  return Full(std::move(shape), 0.0f, space);
}

Tensor Tensor::Full(std::vector<int64_t> shape, float value, device::MemorySpace space) {
  Tensor t = Empty(std::move(shape), space);
  for (auto& x : t.span()) {
    x = value;
  }
  return t;
}

Tensor Tensor::Randn(std::vector<int64_t> shape, Rng& rng, float std) {
  Tensor t = Empty(std::move(shape));
  for (auto& x : t.span()) {
    x = static_cast<float>(rng.Gaussian()) * std;
  }
  return t;
}

Tensor Tensor::FromVector(std::vector<int64_t> shape, const std::vector<float>& values) {
  GS_CHECK_EQ(NumelOf(shape), static_cast<int64_t>(values.size()));
  Tensor t;
  t.shape_ = std::move(shape);
  t.data_ = device::Array<float>::FromVector(values);
  return t;
}

Tensor Tensor::FromArray(std::vector<int64_t> shape, device::Array<float> data) {
  GS_CHECK_EQ(NumelOf(shape), data.size());
  Tensor t;
  t.shape_ = std::move(shape);
  t.data_ = std::move(data);
  return t;
}

Tensor Tensor::Clone() const {
  Tensor t;
  t.shape_ = shape_;
  t.data_ = data_.Clone();
  return t;
}

Tensor Tensor::Reshape(std::vector<int64_t> shape) const {
  GS_CHECK_EQ(NumelOf(shape), numel());
  Tensor t;
  t.shape_ = std::move(shape);
  t.data_ = data_;
  return t;
}

}  // namespace gs::tensor
