// Dense tensors (1-D / 2-D, float32) on the simulated device.
//
// This is the PyTorch-tensor stand-in used by the compute step of sampling
// programs (PASS projections, AS-GCN bias models, LADIES probability
// vectors) and by the gs::gnn trainer. Shared-handle semantics like
// device::Array.

#ifndef GSAMPLER_TENSOR_TENSOR_H_
#define GSAMPLER_TENSOR_TENSOR_H_

#include <initializer_list>
#include <vector>

#include "common/error.h"
#include "common/rng.h"
#include "device/array.h"

namespace gs::tensor {

class Tensor {
 public:
  Tensor() = default;

  // Uninitialized tensor of the given shape (1 or 2 dims).
  static Tensor Empty(std::vector<int64_t> shape,
                      device::MemorySpace space = device::MemorySpace::kDevice);
  static Tensor Zeros(std::vector<int64_t> shape,
                      device::MemorySpace space = device::MemorySpace::kDevice);
  static Tensor Full(std::vector<int64_t> shape, float value,
                     device::MemorySpace space = device::MemorySpace::kDevice);
  // Gaussian(0, std) initialization, deterministic from rng.
  static Tensor Randn(std::vector<int64_t> shape, Rng& rng, float std = 1.0f);
  static Tensor FromVector(std::vector<int64_t> shape, const std::vector<float>& values);
  // Wraps an existing array (shares storage).
  static Tensor FromArray(std::vector<int64_t> shape, device::Array<float> data);

  bool defined() const { return data_.defined(); }
  int dim() const { return static_cast<int>(shape_.size()); }
  const std::vector<int64_t>& shape() const { return shape_; }
  int64_t numel() const { return data_.size(); }
  // Row/col view: 1-D tensors are treated as (n, 1) where convenient.
  int64_t rows() const { return shape_.empty() ? 0 : shape_[0]; }
  int64_t cols() const { return dim() == 2 ? shape_[1] : 1; }

  device::Array<float>& array() { return data_; }
  const device::Array<float>& array() const { return data_; }
  float* data() { return data_.data(); }
  const float* data() const { return data_.data(); }
  std::span<float> span() { return data_.span(); }
  std::span<const float> span() const { return data_.span(); }

  float& at(int64_t i) { return data_[i]; }
  float at(int64_t i) const { return data_[i]; }
  float& at(int64_t r, int64_t c) { return data_[r * cols() + c]; }
  float at(int64_t r, int64_t c) const { return data_[r * cols() + c]; }

  Tensor Clone() const;
  // Reinterprets the buffer with a new shape of equal numel (shares storage).
  Tensor Reshape(std::vector<int64_t> shape) const;

 private:
  std::vector<int64_t> shape_;
  device::Array<float> data_;
};

// Node-id arrays are plain int32 device arrays throughout the codebase.
using IdArray = device::Array<int32_t>;

}  // namespace gs::tensor

#endif  // GSAMPLER_TENSOR_TENSOR_H_
