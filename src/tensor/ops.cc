#include "tensor/ops.h"

#include <algorithm>
#include <cmath>

#include "device/device.h"
#include "device/stream.h"

namespace gs::tensor {
namespace {

device::Stream& CurrentStream() { return device::Current().stream(); }

int64_t IoBytes(std::initializer_list<const Tensor*> tensors) {
  int64_t bytes = 0;
  for (const Tensor* t : tensors) {
    bytes += t->numel() * static_cast<int64_t>(sizeof(float));
  }
  return bytes;
}

}  // namespace

Tensor MatMul(const Tensor& a, const Tensor& b) {
  GS_CHECK_EQ(a.dim(), 2);
  GS_CHECK_EQ(b.dim(), 2);
  GS_CHECK_EQ(a.cols(), b.rows()) << "matmul inner dimensions";
  const int64_t m = a.rows();
  const int64_t k = a.cols();
  const int64_t n = b.cols();

  device::KernelScope kernel(CurrentStream());
  Tensor out = Tensor::Zeros({m, n});
  const float* pa = a.data();
  const float* pb = b.data();
  float* po = out.data();
  // i-k-j loop order for streaming access to b and out.
  for (int64_t i = 0; i < m; ++i) {
    for (int64_t kk = 0; kk < k; ++kk) {
      const float av = pa[i * k + kk];
      if (av == 0.0f) {
        continue;
      }
      const float* brow = pb + kk * n;
      float* orow = po + i * n;
      for (int64_t j = 0; j < n; ++j) {
        orow[j] += av * brow[j];
      }
    }
  }
  kernel.Finish({.dense = true, .parallel_items = m * n, .hbm_bytes = IoBytes({&a, &b, &out})});
  return out;
}

Tensor Binary(BinaryOp op, const Tensor& a, const Tensor& b) {
  // A 1-element right operand broadcasts (h / h.sum() style normalization).
  GS_CHECK(a.shape() == b.shape() || b.numel() == 1) << "elementwise shape mismatch";
  const bool scalar_rhs = b.numel() == 1 && a.numel() != 1;
  device::KernelScope kernel(CurrentStream());
  Tensor out = Tensor::Empty(a.shape());
  const float* pa = a.data();
  const float* pb = b.data();
  float* po = out.data();
  for (int64_t i = 0; i < a.numel(); ++i) {
    po[i] = ApplyBinaryOp(op, pa[i], scalar_rhs ? pb[0] : pb[i]);
  }
  kernel.Finish({.dense = true, .parallel_items = a.numel(), .hbm_bytes = IoBytes({&a, &b, &out})});
  return out;
}

Tensor BinaryScalar(BinaryOp op, const Tensor& a, float b) {
  device::KernelScope kernel(CurrentStream());
  Tensor out = Tensor::Empty(a.shape());
  const float* pa = a.data();
  float* po = out.data();
  for (int64_t i = 0; i < a.numel(); ++i) {
    po[i] = ApplyBinaryOp(op, pa[i], b);
  }
  kernel.Finish({.dense = true, .parallel_items = a.numel(), .hbm_bytes = IoBytes({&a, &out})});
  return out;
}

Tensor Relu(const Tensor& a) {
  device::KernelScope kernel(CurrentStream());
  Tensor out = Tensor::Empty(a.shape());
  for (int64_t i = 0; i < a.numel(); ++i) {
    out.at(i) = std::max(0.0f, a.at(i));
  }
  kernel.Finish({.dense = true, .parallel_items = a.numel(), .hbm_bytes = IoBytes({&a, &out})});
  return out;
}

Tensor Exp(const Tensor& a) {
  device::KernelScope kernel(CurrentStream());
  Tensor out = Tensor::Empty(a.shape());
  for (int64_t i = 0; i < a.numel(); ++i) {
    out.at(i) = std::exp(a.at(i));
  }
  kernel.Finish({.dense = true, .parallel_items = a.numel(), .hbm_bytes = IoBytes({&a, &out})});
  return out;
}

Tensor Abs(const Tensor& a) {
  device::KernelScope kernel(CurrentStream());
  Tensor out = Tensor::Empty(a.shape());
  for (int64_t i = 0; i < a.numel(); ++i) {
    out.at(i) = std::fabs(a.at(i));
  }
  kernel.Finish({.dense = true, .parallel_items = a.numel(), .hbm_bytes = IoBytes({&a, &out})});
  return out;
}

Tensor Softmax(const Tensor& a) {
  device::KernelScope kernel(CurrentStream());
  Tensor out = Tensor::Empty(a.shape());
  const int64_t rows = a.dim() == 2 ? a.rows() : 1;
  const int64_t cols = a.dim() == 2 ? a.cols() : a.numel();
  for (int64_t r = 0; r < rows; ++r) {
    const float* in = a.data() + r * cols;
    float* res = out.data() + r * cols;
    float maxv = -INFINITY;
    for (int64_t c = 0; c < cols; ++c) {
      maxv = std::max(maxv, in[c]);
    }
    double total = 0.0;
    for (int64_t c = 0; c < cols; ++c) {
      res[c] = std::exp(in[c] - maxv);
      total += res[c];
    }
    const float inv = total > 0.0 ? static_cast<float>(1.0 / total) : 0.0f;
    for (int64_t c = 0; c < cols; ++c) {
      res[c] *= inv;
    }
  }
  kernel.Finish({.dense = true, .parallel_items = rows, .hbm_bytes = IoBytes({&a, &out})});
  return out;
}

Tensor GatherRows(const Tensor& a, const IdArray& index) {
  const int64_t d = a.dim() == 2 ? a.cols() : 1;
  const int64_t n = index.size();
  device::KernelScope kernel(CurrentStream());
  Tensor out = a.dim() == 2 ? Tensor::Empty({n, d}) : Tensor::Empty({n});
  int64_t pcie = 0;
  const bool uva = a.array().space() == device::MemorySpace::kHost;
  for (int64_t i = 0; i < n; ++i) {
    const int64_t r = index[i];
    GS_CHECK(r >= 0 && r < a.rows()) << "gather index " << r << " out of range " << a.rows();
    std::copy_n(a.data() + r * d, d, out.data() + i * d);
  }
  if (uva) {
    pcie = n * d * static_cast<int64_t>(sizeof(float));
  }
  kernel.Finish({.dense = true, .parallel_items = n,
                 .hbm_bytes = 2 * n * d * static_cast<int64_t>(sizeof(float)),
                 .pcie_bytes = pcie});
  return out;
}

Tensor SumAxis(const Tensor& a, int axis) {
  device::KernelScope kernel(CurrentStream());
  if (a.dim() == 1) {
    Tensor out = Tensor::Zeros({1});
    for (int64_t i = 0; i < a.numel(); ++i) {
      out.at(0) += a.at(i);
    }
    kernel.Finish({.dense = true, .parallel_items = a.numel(), .hbm_bytes = IoBytes({&a, &out})});
    return out;
  }
  GS_CHECK(axis == 0 || axis == 1);
  const int64_t rows = a.rows();
  const int64_t cols = a.cols();
  Tensor out = Tensor::Zeros({axis == 0 ? cols : rows});
  for (int64_t r = 0; r < rows; ++r) {
    for (int64_t c = 0; c < cols; ++c) {
      out.at(axis == 0 ? c : r) += a.at(r, c);
    }
  }
  kernel.Finish({.dense = true, .parallel_items = a.numel(), .hbm_bytes = IoBytes({&a, &out})});
  return out;
}

float SumAll(const Tensor& a) {
  device::KernelScope kernel(CurrentStream());
  double total = 0.0;
  for (int64_t i = 0; i < a.numel(); ++i) {
    total += a.at(i);
  }
  kernel.Finish({.dense = true, .parallel_items = a.numel(), .hbm_bytes = IoBytes({&a})});
  return static_cast<float>(total);
}

Tensor Transpose(const Tensor& a) {
  GS_CHECK_EQ(a.dim(), 2);
  device::KernelScope kernel(CurrentStream());
  Tensor out = Tensor::Empty({a.cols(), a.rows()});
  for (int64_t r = 0; r < a.rows(); ++r) {
    for (int64_t c = 0; c < a.cols(); ++c) {
      out.at(c, r) = a.at(r, c);
    }
  }
  kernel.Finish({.dense = true, .parallel_items = a.numel(), .hbm_bytes = IoBytes({&a, &out})});
  return out;
}

Tensor StackColumns(std::span<const Tensor> xs) {
  GS_CHECK(!xs.empty());
  const int64_t n = xs[0].numel();
  for (const Tensor& x : xs) {
    GS_CHECK_EQ(x.dim(), 1);
    GS_CHECK_EQ(x.numel(), n);
  }
  const int64_t k = static_cast<int64_t>(xs.size());
  device::KernelScope kernel(CurrentStream());
  Tensor out = Tensor::Empty({n, k});
  for (int64_t j = 0; j < k; ++j) {
    for (int64_t i = 0; i < n; ++i) {
      out.at(i, j) = xs[static_cast<size_t>(j)].at(i);
    }
  }
  kernel.Finish({.dense = true, .parallel_items = n * k,
                 .hbm_bytes = 2 * n * k * static_cast<int64_t>(sizeof(float))});
  return out;
}

IdArray ArgmaxRows(const Tensor& a) {
  GS_CHECK_EQ(a.dim(), 2);
  device::KernelScope kernel(CurrentStream());
  IdArray out = IdArray::Empty(a.rows());
  for (int64_t r = 0; r < a.rows(); ++r) {
    int64_t best = 0;
    for (int64_t c = 1; c < a.cols(); ++c) {
      if (a.at(r, c) > a.at(r, best)) {
        best = c;
      }
    }
    out[r] = static_cast<int32_t>(best);
  }
  kernel.Finish({.dense = true, .parallel_items = a.rows(), .hbm_bytes = IoBytes({&a})});
  return out;
}

}  // namespace gs::tensor
