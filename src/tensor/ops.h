// Dense tensor operators.
//
// Every function launches exactly one simulated kernel on the current
// device's stream (see device/stream.h); shapes are validated with
// GS_CHECK. The operator set mirrors what the paper's compute steps need
// from PyTorch: matmul, elementwise arithmetic, softmax, relu, gathers,
// reductions, and stacking.

#ifndef GSAMPLER_TENSOR_OPS_H_
#define GSAMPLER_TENSOR_OPS_H_

#include <span>

#include "common/binary_op.h"
#include "tensor/tensor.h"

namespace gs::tensor {

// (M, K) @ (K, N) -> (M, N).
Tensor MatMul(const Tensor& a, const Tensor& b);

// Elementwise op on tensors of identical shape.
Tensor Binary(BinaryOp op, const Tensor& a, const Tensor& b);
// Elementwise op with a scalar right operand.
Tensor BinaryScalar(BinaryOp op, const Tensor& a, float b);

Tensor Relu(const Tensor& a);
Tensor Exp(const Tensor& a);
Tensor Abs(const Tensor& a);

// Row-wise softmax for 2-D input; full softmax for 1-D input.
Tensor Softmax(const Tensor& a);

// Selects rows of a (2-D) or elements of a (1-D) by index. Indices must be
// within range. When `a` lives in host memory the gather charges PCIe bytes
// (UVA feature access).
Tensor GatherRows(const Tensor& a, const IdArray& index);

// Sum over an axis of a 2-D tensor: axis=0 sums rows away -> (cols,),
// axis=1 sums cols away -> (rows,). For 1-D input (axis ignored) returns a
// 1-element tensor.
Tensor SumAxis(const Tensor& a, int axis);

float SumAll(const Tensor& a);

Tensor Transpose(const Tensor& a);

// Stacks k same-length 1-D tensors into an (n, k) matrix (column j = xs[j]).
Tensor StackColumns(std::span<const Tensor> xs);

// Row-wise argmax of a 2-D tensor.
IdArray ArgmaxRows(const Tensor& a);

}  // namespace gs::tensor

#endif  // GSAMPLER_TENSOR_OPS_H_
