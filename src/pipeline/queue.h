// Bounded MPMC queue with backpressure — the channel connecting pipeline
// stages (DALI-style prefetch queues).
//
// Push blocks while the queue is full (backpressure on the producer), Pop
// blocks while it is empty (starvation on the consumer); Close() ends the
// stream gracefully (producers are rejected, consumers drain what remains)
// and Cancel() tears it down (pending items are dropped so an aborting
// pipeline unwinds without handing out further work). The queue keeps
// occupancy and blocking statistics that feed pipeline::Metrics.

#ifndef GSAMPLER_PIPELINE_QUEUE_H_
#define GSAMPLER_PIPELINE_QUEUE_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <optional>
#include <utility>
#include <vector>

#include "common/error.h"
#include "common/timer.h"

namespace gs::pipeline {

// Snapshot of a queue's lifetime statistics.
struct QueueStats {
  int64_t capacity = 0;
  int64_t push_attempts = 0;      // every Push/TryPush call
  int64_t pushes = 0;             // attempts that enqueued an item
  int64_t pops = 0;
  int64_t push_blocked = 0;       // pushes that had to wait for a free slot
  // Attempts that dropped their item: TryPush refusals (full or closed) and
  // Push calls that found the queue closed — including producers that were
  // blocked on a full queue when Close()/Cancel() arrived. Every attempt is
  // accounted: push_attempts == pushes + push_rejected.
  int64_t push_rejected = 0;
  int64_t pop_blocked = 0;        // pops that had to wait for an item
  int64_t push_blocked_wall_ns = 0;
  int64_t pop_blocked_wall_ns = 0;
  // occupancy_hist[k]: number of pushes that left k items in the queue
  // (k in [1, capacity]; index 0 counts pops that emptied the queue).
  std::vector<int64_t> occupancy_hist;
};

template <typename T>
class BoundedQueue {
 public:
  explicit BoundedQueue(int64_t capacity) : capacity_(capacity) {
    GS_CHECK_GT(capacity, 0) << "queue capacity must be positive";
    stats_.capacity = capacity;
    stats_.occupancy_hist.assign(static_cast<size_t>(capacity) + 1, 0);
  }

  BoundedQueue(const BoundedQueue&) = delete;
  BoundedQueue& operator=(const BoundedQueue&) = delete;

  // Blocks while full. Returns false — and drops the item — once the queue
  // is closed or cancelled.
  bool Push(T item) {
    std::unique_lock<std::mutex> lock(mutex_);
    ++stats_.push_attempts;
    if (static_cast<int64_t>(items_.size()) >= capacity_ && !closed_) {
      ++stats_.push_blocked;
      Timer blocked;
      not_full_.wait(lock, [&] {
        return closed_ || static_cast<int64_t>(items_.size()) < capacity_;
      });
      stats_.push_blocked_wall_ns += blocked.ElapsedNanos();
    }
    if (closed_) {
      // The item is dropped whether the producer was blocked when the queue
      // closed or arrived after; either way the attempt must be accounted or
      // pipeline metrics silently lose batches.
      ++stats_.push_rejected;
      return false;
    }
    items_.push_back(std::move(item));
    ++stats_.pushes;
    ++stats_.occupancy_hist[items_.size()];
    not_empty_.notify_one();
    return true;
  }

  // Non-blocking push: returns false immediately — dropping the item —
  // when the queue is full, closed, or cancelled. This is the admission-
  // control entry point: a full queue is an overload signal, not a reason
  // to stall the caller.
  bool TryPush(T item) {
    std::lock_guard<std::mutex> lock(mutex_);
    ++stats_.push_attempts;
    if (closed_ || static_cast<int64_t>(items_.size()) >= capacity_) {
      ++stats_.push_rejected;
      return false;
    }
    items_.push_back(std::move(item));
    ++stats_.pushes;
    ++stats_.occupancy_hist[items_.size()];
    not_empty_.notify_one();
    return true;
  }

  // Blocks while empty. Returns nullopt once the queue is closed and
  // drained, or immediately after Cancel().
  std::optional<T> Pop() {
    std::unique_lock<std::mutex> lock(mutex_);
    if (items_.empty() && !closed_) {
      ++stats_.pop_blocked;
      Timer blocked;
      not_empty_.wait(lock, [&] { return closed_ || !items_.empty(); });
      stats_.pop_blocked_wall_ns += blocked.ElapsedNanos();
    }
    if (items_.empty()) {
      return std::nullopt;
    }
    T item = std::move(items_.front());
    items_.pop_front();
    ++stats_.pops;
    if (items_.empty()) {
      ++stats_.occupancy_hist[0];
    }
    not_full_.notify_one();
    return item;
  }

  // Non-blocking pop: returns nullopt immediately when the queue is empty
  // (whether or not it is closed).
  std::optional<T> TryPop() {
    std::lock_guard<std::mutex> lock(mutex_);
    if (items_.empty()) {
      return std::nullopt;
    }
    T item = std::move(items_.front());
    items_.pop_front();
    ++stats_.pops;
    if (items_.empty()) {
      ++stats_.occupancy_hist[0];
    }
    not_full_.notify_one();
    return item;
  }

  // No more pushes; pending items remain poppable.
  void Close() {
    std::lock_guard<std::mutex> lock(mutex_);
    closed_ = true;
    not_full_.notify_all();
    not_empty_.notify_all();
  }

  // Close and drop everything pending: waiters wake immediately and see an
  // empty, closed queue. Used to unwind an aborting pipeline.
  void Cancel() {
    std::lock_guard<std::mutex> lock(mutex_);
    closed_ = true;
    items_.clear();
    not_full_.notify_all();
    not_empty_.notify_all();
  }

  bool closed() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return closed_;
  }

  int64_t size() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return static_cast<int64_t>(items_.size());
  }

  int64_t capacity() const { return capacity_; }

  QueueStats stats() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return stats_;
  }

 private:
  const int64_t capacity_;
  mutable std::mutex mutex_;
  std::condition_variable not_full_;
  std::condition_variable not_empty_;
  std::deque<T> items_;
  bool closed_ = false;
  QueueStats stats_;
};

}  // namespace gs::pipeline

#endif  // GSAMPLER_PIPELINE_QUEUE_H_
