// Asynchronous pipelined executor: decomposes per-item work into stages
// (sample -> feature-extract -> train) connected by bounded prefetch queues
// with backpressure, one worker thread per stage (DALI's prefetch-queue
// executor shape; stages overlap, items stay ordered).
//
// Items are identified by their index in [0, num_items); payloads live in
// caller-owned slots that stage functions index into. Exactly one stage
// touches an item at a time — the handoff through the stage queues provides
// the happens-before edge — so stage functions need no locking of their
// own.
//
// Virtual-clock integration: every stage runs on its own device::Stream
// whose timeline starts at the caller's stream position. Data dependencies
// (stage s+1 needs stage s's output for item i) become Event waits charged
// as *starved* stall time; the bounded prefetch depth is enforced by credits
// flowing upstream (a stage may run at most `depth` items ahead of its
// consumer) and charged as *backpressure* stall time. After a run the
// overlapped makespan — not the sum of stage busy times — is folded into
// the caller's stream, so epoch timings read from the device reflect the
// overlap.
//
// Determinism: stages process items strictly in order on a single worker
// each, so a pipelined run performs exactly the same kernel sequence per
// stage as depth 0 (synchronous in-thread execution) and produces
// bit-identical outputs; only the simulated timeline differs.
//
// A stage exception aborts the run: the queues are cancelled (upstream
// producers stop, downstream consumers drain out), every worker joins, and
// Run rethrows a gs::Error naming the failing stage.

#ifndef GSAMPLER_PIPELINE_EXECUTOR_H_
#define GSAMPLER_PIPELINE_EXECUTOR_H_

#include <cstdint>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "device/stream.h"
#include "pipeline/metrics.h"
#include "pipeline/worker_pool.h"

namespace gs::pipeline {

struct Stage {
  std::string name;
  // Processes item `index`. Runs with the stage's stream installed as the
  // thread's current stream; may throw.
  std::function<void(int64_t index)> fn;
};

struct Options {
  // Prefetch-queue depth between stages (DALI's prefetch_queue_depth): each
  // stage may run at most `depth` items ahead of its consumer. 0 executes
  // the stages inline on the calling thread (synchronous reference mode).
  int depth = 2;
};

class Executor {
 public:
  Executor(std::vector<Stage> stages, Options options);

  // Processes items [0, num_items) through every stage. May be called
  // repeatedly (once per epoch); metrics accumulate across runs. Throws
  // gs::Error if a stage fails.
  void Run(int64_t num_items);

  // Accumulated metrics snapshot (totals over all runs so far).
  const Metrics& metrics() const { return metrics_; }

  int depth() const { return options_.depth; }

 private:
  void RunInline(int64_t num_items);
  void RunPipelined(int64_t num_items);

  std::vector<Stage> stages_;
  Options options_;
  // One worker (thread + stream) per stage, created from the current
  // device's profile on the first pipelined run and reused (timelines
  // re-aligned) afterwards.
  std::unique_ptr<WorkerPool> pool_;
  Metrics metrics_;
};

}  // namespace gs::pipeline

#endif  // GSAMPLER_PIPELINE_EXECUTOR_H_
