#include "pipeline/executor.h"

#include <algorithm>
#include <atomic>
#include <optional>
#include <thread>
#include <utility>

#include "common/error.h"
#include "device/device.h"
#include "pipeline/queue.h"

namespace gs::pipeline {
namespace {

// Data token handed downstream: stage s finished `index`; its output is
// complete at `ready_ns` on stage s's timeline.
struct Token {
  int64_t index = 0;
  int64_t ready_ns = 0;
};

// Backpressure credit handed upstream: the consumer freed a prefetch slot
// at virtual time `ns`.
struct Credit {
  int64_t ns = 0;
};

device::StreamCounters Diff(const device::StreamCounters& after,
                            const device::StreamCounters& before) {
  device::StreamCounters d;
  d.kernels_launched = after.kernels_launched - before.kernels_launched;
  d.virtual_ns = after.virtual_ns - before.virtual_ns;
  d.cpu_ns = after.cpu_ns - before.cpu_ns;
  d.hbm_bytes = after.hbm_bytes - before.hbm_bytes;
  d.pcie_bytes = after.pcie_bytes - before.pcie_bytes;
  d.timeline_ns = after.timeline_ns - before.timeline_ns;
  d.starved_ns = after.starved_ns - before.starved_ns;
  d.backpressure_ns = after.backpressure_ns - before.backpressure_ns;
  d.occupancy_ns = after.occupancy_ns - before.occupancy_ns;
  return d;
}

Metrics EmptyRunMetrics(const std::vector<Stage>& stages, int depth) {
  Metrics m;
  m.depth = depth;
  m.runs = 1;
  m.stages.resize(stages.size());
  for (size_t s = 0; s < stages.size(); ++s) {
    m.stages[s].name = stages[s].name;
  }
  return m;
}

[[noreturn]] void RethrowWithStage(const std::string& stage,
                                   const std::exception_ptr& error) {
  try {
    std::rethrow_exception(error);
  } catch (const std::exception& e) {
    throw Error("pipeline stage '" + stage + "' failed: " + e.what());
  } catch (...) {
    throw Error("pipeline stage '" + stage + "' failed: unknown exception");
  }
}

}  // namespace

Executor::Executor(std::vector<Stage> stages, Options options)
    : stages_(std::move(stages)), options_(options) {
  GS_CHECK(!stages_.empty()) << "pipeline needs at least one stage";
  GS_CHECK_GE(options_.depth, 0);
  for (const Stage& s : stages_) {
    GS_CHECK(s.fn != nullptr) << "stage '" << s.name << "' has no function";
  }
  metrics_ = EmptyRunMetrics(stages_, options_.depth);
  metrics_.runs = 0;
}

void Executor::Run(int64_t num_items) {
  GS_CHECK_GE(num_items, 0);
  if (options_.depth == 0) {
    RunInline(num_items);
  } else {
    RunPipelined(num_items);
  }
}

void Executor::RunInline(int64_t num_items) {
  device::Stream& stream = device::Current().stream();
  Metrics run = EmptyRunMetrics(stages_, 0);
  device::StreamCounters last = stream.counters();
  const int64_t origin = last.timeline_ns;

  auto finish = [&](const std::exception_ptr& error, const std::string& stage) {
    const device::StreamCounters end = stream.counters();
    run.epoch_virtual_ns = end.timeline_ns - origin;
    run.serial_virtual_ns = end.timeline_ns - origin;
    metrics_.Accumulate(run);
    if (error != nullptr) {
      RethrowWithStage(stage, error);
    }
  };

  for (int64_t i = 0; i < num_items; ++i) {
    for (size_t s = 0; s < stages_.size(); ++s) {
      try {
        stages_[s].fn(i);
      } catch (...) {
        finish(std::current_exception(), stages_[s].name);
      }
      const device::StreamCounters cur = stream.counters();
      const device::StreamCounters d = Diff(cur, last);
      run.stages[s].items += 1;
      run.stages[s].busy_virtual_ns += d.virtual_ns;
      run.stages[s].busy_cpu_ns += d.cpu_ns;
      run.stages[s].kernels_launched += d.kernels_launched;
      last = cur;
    }
    run.items += 1;
  }
  finish(nullptr, "");
}

void Executor::RunPipelined(int64_t num_items) {
  const size_t num_stages = stages_.size();
  const int64_t depth = options_.depth;
  device::Device& dev = device::Current();
  device::Stream& parent = dev.stream();
  const int64_t origin = parent.now_ns();

  if (pool_ == nullptr) {
    pool_ = std::make_unique<WorkerPool>(dev.profile(), static_cast<int>(num_stages));
  }
  std::vector<device::StreamCounters> before(num_stages);
  for (size_t s = 0; s < num_stages; ++s) {
    pool_->stream(static_cast<int>(s)).AlignTo(origin);
    before[s] = pool_->stream(static_cast<int>(s)).counters();
  }

  // data[s]: stage s -> s+1 output tokens; credits[s]: free prefetch slots
  // of data[s] flowing back upstream. A stage acquires a slot credit before
  // processing, so it runs at most `depth` items ahead of its consumer;
  // credit capacity has headroom because at most depth + 1 credits are ever
  // outstanding.
  std::vector<std::unique_ptr<BoundedQueue<Token>>> data;
  std::vector<std::unique_ptr<BoundedQueue<Credit>>> credits;
  for (size_t s = 0; s + 1 < num_stages; ++s) {
    data.push_back(std::make_unique<BoundedQueue<Token>>(depth));
    credits.push_back(std::make_unique<BoundedQueue<Credit>>(depth + 2));
    for (int64_t k = 0; k < depth; ++k) {
      credits.back()->Push(Credit{origin});
    }
  }

  std::atomic<bool> aborted{false};
  std::mutex error_mutex;
  std::exception_ptr first_error;
  std::string failed_stage;
  std::vector<int64_t> processed(num_stages, 0);

  auto fail = [&](size_t s, std::exception_ptr error) {
    {
      std::lock_guard<std::mutex> lock(error_mutex);
      if (first_error == nullptr) {
        first_error = std::move(error);
        failed_stage = stages_[s].name;
      }
    }
    aborted.store(true, std::memory_order_release);
    for (auto& q : data) {
      q->Cancel();
    }
    for (auto& q : credits) {
      q->Cancel();
    }
  };

  auto worker = [&](int worker_index) {
    const size_t s = static_cast<size_t>(worker_index);
    device::Stream& stream = pool_->stream(worker_index);
    try {
      for (int64_t i = 0;; ++i) {
        int64_t ready_ns = origin;
        if (s == 0) {
          if (i >= num_items || aborted.load(std::memory_order_acquire)) {
            break;
          }
        } else {
          std::optional<Token> token = data[s - 1]->Pop();
          if (!token.has_value()) {
            break;  // upstream closed (done) or cancelled (abort)
          }
          GS_INTERNAL(token->index == i);
          // Popping freed a prefetch slot; tell the producer when.
          credits[s - 1]->Push(Credit{stream.now_ns()});
          ready_ns = token->ready_ns;
        }
        std::optional<Credit> slot;
        if (s + 1 < num_stages) {
          slot = credits[s]->Pop();
          if (!slot.has_value()) {
            break;  // cancelled while waiting for a slot
          }
        }
        stream.WaitEvent(device::Event{ready_ns}, device::StallKind::kStarved);
        if (slot.has_value()) {
          stream.WaitEvent(device::Event{slot->ns}, device::StallKind::kBackpressure);
        }
        stages_[s].fn(i);
        processed[s] += 1;
        if (s + 1 < num_stages) {
          if (!data[s]->Push(Token{i, stream.RecordEvent().ready_at_ns})) {
            break;
          }
        }
      }
    } catch (...) {
      fail(s, std::current_exception());
    }
    if (s + 1 < num_stages) {
      data[s]->Close();
    }
    if (s > 0) {
      credits[s - 1]->Close();
    }
  };

  pool_->Start(worker);
  pool_->Join();

  // Account the run even if it aborted: per-stage busy/stall from the stage
  // streams, queue stats from the data queues, and the overlapped makespan
  // folded once into the caller's stream.
  Metrics run = EmptyRunMetrics(stages_, options_.depth);
  device::StreamCounters total;
  int64_t end_ns = origin;
  for (size_t s = 0; s < num_stages; ++s) {
    const device::StreamCounters after = pool_->stream(static_cast<int>(s)).counters();
    const device::StreamCounters d = Diff(after, before[s]);
    StageMetrics& m = run.stages[s];
    m.items = processed[s];
    m.busy_virtual_ns = d.virtual_ns;
    m.busy_cpu_ns = d.cpu_ns;
    m.starved_ns = d.starved_ns;
    m.backpressure_ns = d.backpressure_ns;
    m.kernels_launched = d.kernels_launched;
    if (s + 1 < num_stages) {
      m.out_queue = data[s]->stats();
    }
    total.kernels_launched += d.kernels_launched;
    total.cpu_ns += d.cpu_ns;
    total.hbm_bytes += d.hbm_bytes;
    total.pcie_bytes += d.pcie_bytes;
    total.occupancy_ns += d.occupancy_ns;
    run.serial_virtual_ns += d.virtual_ns;
    end_ns = std::max(end_ns, after.timeline_ns);
  }
  run.items = processed[num_stages - 1];
  run.epoch_virtual_ns = end_ns - origin;
  parent.MergeOverlapped(total, run.epoch_virtual_ns);
  metrics_.Accumulate(run);

  if (first_error != nullptr) {
    RethrowWithStage(failed_stage, first_error);
  }
}

}  // namespace gs::pipeline
