#include "pipeline/metrics.h"

#include <algorithm>
#include <cstdio>
#include <sstream>

#include "common/error.h"

namespace gs::pipeline {
namespace {

void AccumulateQueue(QueueStats& into, const QueueStats& from) {
  into.capacity = std::max(into.capacity, from.capacity);
  into.push_attempts += from.push_attempts;
  into.pushes += from.pushes;
  into.push_rejected += from.push_rejected;
  into.pops += from.pops;
  into.push_blocked += from.push_blocked;
  into.pop_blocked += from.pop_blocked;
  into.push_blocked_wall_ns += from.push_blocked_wall_ns;
  into.pop_blocked_wall_ns += from.pop_blocked_wall_ns;
  if (into.occupancy_hist.size() < from.occupancy_hist.size()) {
    into.occupancy_hist.resize(from.occupancy_hist.size(), 0);
  }
  for (size_t i = 0; i < from.occupancy_hist.size(); ++i) {
    into.occupancy_hist[i] += from.occupancy_hist[i];
  }
}

std::string HistString(const std::vector<int64_t>& hist) {
  // Trailing all-zero buckets (deep queues that never fill) are compressed
  // so wide prefetch depths keep the table readable.
  size_t last = hist.size();
  while (last > 1 && hist[last - 1] == 0) {
    --last;
  }
  std::ostringstream out;
  out << "[";
  for (size_t i = 0; i < last; ++i) {
    out << (i > 0 ? " " : "") << i << ":" << hist[i];
  }
  if (last < hist.size()) {
    out << " ..." << (hist.size() - 1) << ":0";
  }
  out << "]";
  return out.str();
}

}  // namespace

void Metrics::Accumulate(const Metrics& other) {
  if (stages.empty()) {
    *this = other;
    return;
  }
  GS_CHECK_EQ(stages.size(), other.stages.size())
      << "cannot accumulate metrics of pipelines with different stage counts";
  depth = other.depth;
  items += other.items;
  runs += other.runs;
  epoch_virtual_ns += other.epoch_virtual_ns;
  serial_virtual_ns += other.serial_virtual_ns;
  for (size_t s = 0; s < stages.size(); ++s) {
    StageMetrics& into = stages[s];
    const StageMetrics& from = other.stages[s];
    into.items += from.items;
    into.busy_virtual_ns += from.busy_virtual_ns;
    into.busy_cpu_ns += from.busy_cpu_ns;
    into.starved_ns += from.starved_ns;
    into.backpressure_ns += from.backpressure_ns;
    into.kernels_launched += from.kernels_launched;
    AccumulateQueue(into.out_queue, from.out_queue);
  }
}

std::string Metrics::ToString() const {
  std::ostringstream out;
  char line[256];
  std::snprintf(line, sizeof(line),
                "pipeline metrics: depth %d, %lld stages, %lld items, %lld run(s)\n",
                depth, static_cast<long long>(stages.size()), static_cast<long long>(items),
                static_cast<long long>(runs));
  out << line;
  std::snprintf(line, sizeof(line), "  %-12s %7s %10s %11s %14s  %s\n", "stage", "items",
                "busy ms", "starved ms", "backpress. ms", "queue occupancy");
  out << line;
  for (const StageMetrics& s : stages) {
    std::snprintf(line, sizeof(line), "  %-12s %7lld %10.2f %11.2f %14.2f  ",
                  s.name.c_str(), static_cast<long long>(s.items), s.BusyMs(), s.StarvedMs(),
                  s.BackpressureMs());
    out << line;
    out << (s.out_queue.capacity > 0 ? HistString(s.out_queue.occupancy_hist) : "-") << "\n";
  }
  std::snprintf(line, sizeof(line),
                "  epoch %.2f ms pipelined vs %.2f ms serial -> overlap speedup %.2fx "
                "(efficiency %.0f%%)\n",
                EpochMs(), SerialMs(), OverlapSpeedup(), 100.0 * OverlapEfficiency());
  out << line;
  return out.str();
}

}  // namespace gs::pipeline
