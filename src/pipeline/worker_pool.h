// Pool of worker threads, each bound to its own device::Stream.
//
// This is the stage-worker idiom of pipeline::Executor extracted into a
// reusable facility: every worker thread installs its stream as the
// thread's current stream (StreamGuard), so all kernels the worker runs are
// recorded on — and advance the virtual timeline of — that stream. The
// pipeline executor spawns one worker per stage per Run; the serving
// subsystem (gs::serving::Server) keeps a long-lived pool whose workers
// loop over an admission queue.
//
// Streams persist across Start/Join cycles so callers can diff counters
// around a run (the executor) or accumulate them forever (the server).

#ifndef GSAMPLER_PIPELINE_WORKER_POOL_H_
#define GSAMPLER_PIPELINE_WORKER_POOL_H_

#include <functional>
#include <memory>
#include <thread>
#include <vector>

#include "device/profile.h"
#include "device/stream.h"

namespace gs::pipeline {

class WorkerPool {
 public:
  // Creates `count` streams from `profile`; no threads yet.
  WorkerPool(const device::DeviceProfile& profile, int count);

  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

  // Joins any running workers.
  ~WorkerPool();

  int size() const { return static_cast<int>(streams_.size()); }
  device::Stream& stream(int worker) { return *streams_[static_cast<size_t>(worker)]; }

  // Spawns one thread per worker; each installs its stream and runs
  // body(worker_index) to completion. Must not be called while a previous
  // Start is still running (Join first).
  void Start(std::function<void(int)> body);

  // Joins all workers spawned by the last Start. Idempotent.
  void Join();

 private:
  std::vector<std::unique_ptr<device::Stream>> streams_;
  std::vector<std::thread> threads_;
};

}  // namespace gs::pipeline

#endif  // GSAMPLER_PIPELINE_WORKER_POOL_H_
