#include "pipeline/worker_pool.h"

#include <utility>

#include "common/error.h"
#include "device/device.h"

namespace gs::pipeline {

WorkerPool::WorkerPool(const device::DeviceProfile& profile, int count) {
  GS_CHECK_GT(count, 0) << "worker pool needs at least one worker";
  streams_.reserve(static_cast<size_t>(count));
  for (int i = 0; i < count; ++i) {
    streams_.push_back(std::make_unique<device::Stream>(profile));
  }
}

WorkerPool::~WorkerPool() { Join(); }

void WorkerPool::Start(std::function<void(int)> body) {
  GS_CHECK(threads_.empty()) << "worker pool already running; Join() first";
  GS_CHECK(body != nullptr);
  threads_.reserve(streams_.size());
  for (size_t i = 0; i < streams_.size(); ++i) {
    threads_.emplace_back([this, i, body] {
      device::StreamGuard guard(*streams_[i]);
      body(static_cast<int>(i));
    });
  }
}

void WorkerPool::Join() {
  for (std::thread& t : threads_) {
    if (t.joinable()) {
      t.join();
    }
  }
  threads_.clear();
}

}  // namespace gs::pipeline
