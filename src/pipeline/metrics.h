// Per-stage metrics exported by the pipeline executor: busy/stall virtual
// time per stage, prefetch-queue occupancy histograms, and the pipelined
// epoch makespan vs the serial (sum-of-stages) cost. gsampler_cli and the
// benches print these; the stall split attributes lost time to
// producer-starved (waiting on upstream data) vs consumer-backpressured
// (waiting for a free prefetch slot downstream).

#ifndef GSAMPLER_PIPELINE_METRICS_H_
#define GSAMPLER_PIPELINE_METRICS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "pipeline/queue.h"

namespace gs::pipeline {

struct StageMetrics {
  std::string name;
  int64_t items = 0;
  int64_t busy_virtual_ns = 0;       // simulated time spent doing stage work
  int64_t busy_cpu_ns = 0;           // measured host time of the stage's kernels
  int64_t starved_ns = 0;            // stalled waiting for upstream output
  int64_t backpressure_ns = 0;       // stalled waiting for a downstream slot
  int64_t kernels_launched = 0;
  // Stats of the prefetch queue this stage feeds (unset for the last stage).
  QueueStats out_queue;

  double BusyMs() const { return static_cast<double>(busy_virtual_ns) / 1e6; }
  double StarvedMs() const { return static_cast<double>(starved_ns) / 1e6; }
  double BackpressureMs() const { return static_cast<double>(backpressure_ns) / 1e6; }
};

// Snapshot of a pipeline's accumulated metrics (sums over every Run since
// construction).
struct Metrics {
  int depth = 0;
  int64_t items = 0;  // items through the full pipeline
  int64_t runs = 0;   // Run() invocations (epochs)
  std::vector<StageMetrics> stages;
  // Simulated makespan of the pipelined execution (what the epoch costs).
  int64_t epoch_virtual_ns = 0;
  // Sum of per-stage busy time — what strictly serial execution would cost.
  int64_t serial_virtual_ns = 0;

  double EpochMs() const { return static_cast<double>(epoch_virtual_ns) / 1e6; }
  double SerialMs() const { return static_cast<double>(serial_virtual_ns) / 1e6; }
  // serial / pipelined simulated time: 1.0 = no overlap, num_stages = ideal.
  double OverlapSpeedup() const {
    return epoch_virtual_ns > 0 ? static_cast<double>(serial_virtual_ns) /
                                      static_cast<double>(epoch_virtual_ns)
                                : 1.0;
  }
  // OverlapSpeedup normalized by stage count into [~1/S, 1].
  double OverlapEfficiency() const {
    return stages.empty() ? 0.0 : OverlapSpeedup() / static_cast<double>(stages.size());
  }

  // Merges another snapshot stage-wise (used to total across pipelines).
  void Accumulate(const Metrics& other);

  // Multi-line human-readable table.
  std::string ToString() const;
};

}  // namespace gs::pipeline

#endif  // GSAMPLER_PIPELINE_METRICS_H_
