// Statistical machinery for the differential-correctness oracle.
//
// The oracle compares sampler implementations that are only *statistically*
// equivalent (different execution orders, super-batch groupings, alias vs.
// inverse-CDF paths), so it needs proper hypothesis tests, not ad-hoc
// thresholds: chi-square goodness-of-fit against analytic probabilities,
// chi-square homogeneity between two empirical count vectors, and a
// two-sample Kolmogorov-Smirnov test. All tests return an actual p-value
// (via the regularized incomplete gamma function / the Kolmogorov
// distribution) so callers can pick their significance level.

#ifndef GSAMPLER_ORACLE_STATS_H_
#define GSAMPLER_ORACLE_STATS_H_

#include <cstdint>
#include <span>
#include <vector>

namespace gs::oracle {

// Regularized upper incomplete gamma Q(a, x) = Γ(a, x) / Γ(a), a > 0,
// x >= 0. Series expansion below the a+1 crossover, Lentz continued
// fraction above it.
double RegularizedGammaQ(double a, double x);

// Upper-tail p-value of a chi-square statistic with `dof` degrees of
// freedom: P(X >= statistic) = Q(dof/2, statistic/2).
double ChiSquarePValue(double statistic, int dof);

struct TestResult {
  double statistic = 0.0;
  int dof = 0;
  double p_value = 1.0;
};

// Goodness of fit of observed category counts against analytic
// probabilities (normalized internally). Categories are pooled greedily
// until every pooled cell has expected count >= `min_expected`, keeping the
// chi-square approximation honest for sparse tails. Returns p = 1 when
// fewer than two pooled cells remain.
TestResult ChiSquareGoodnessOfFit(std::span<const int64_t> observed,
                                  std::span<const double> probs,
                                  double min_expected = 5.0);

// Two-sample homogeneity: tests whether count vectors `a` and `b` (same
// category space) were drawn from one distribution. Cells are pooled like
// the goodness-of-fit test, on the combined expected counts.
TestResult ChiSquareHomogeneity(std::span<const int64_t> a, std::span<const int64_t> b,
                                double min_expected = 5.0);

// Two-sample Kolmogorov-Smirnov with the asymptotic Kolmogorov-distribution
// p-value. Sorts copies of the inputs. On discrete data the test is
// conservative (true p is at least the reported one), which is the safe
// direction for an equivalence oracle.
TestResult KolmogorovSmirnov(std::vector<double> a, std::vector<double> b);

}  // namespace gs::oracle

#endif  // GSAMPLER_ORACLE_STATS_H_
