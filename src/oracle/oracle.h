// gs::oracle — the differential-correctness oracle.
//
// The engine's central promise is that compilation never changes sampling
// semantics: for any algorithm x dataset x device profile, the optimized
// CompiledPlan must sample exactly what the eager (all-optimizations-off)
// reference samples, because every pass preserves both the program's meaning
// and its RNG-consumption order. The oracle turns that promise into a
// checked property:
//
//  - Deterministic differential: run the optimized plan and the reference
//    plan under mirrored RNG streams (same session seed => batch j draws
//    from Rng(seed).Fork(j) on both sides) and assert bit-identical sampled
//    structure (frontiers, edges, walk traces); float payloads compare
//    within tolerance since fused kernels may reorder reductions.
//  - Stochastic equivalence: comparisons that are only *statistically*
//    equivalent — pure-walk super-batch grouping (steps interleave draws
//    across the concatenated frontier), the eager baseline twins (different
//    execution order), alias vs. inverse-CDF sampling paths — run
//    chi-square / KS equivalence tests over per-node inclusion frequencies
//    at a configurable significance level.
//
// tools/fuzz_passes drives VerifyConfig over randomized pass configurations
// and minimizes any failure to a one-line reproducer.

#ifndef GSAMPLER_ORACLE_ORACLE_H_
#define GSAMPLER_ORACLE_ORACLE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/plan.h"
#include "graph/graph.h"
#include "graph/store.h"
#include "oracle/stats.h"

namespace gs::oracle {

struct OracleOptions {
  uint64_t seed = 0x0AC1E;
  // Deterministic differential: epoch shape.
  int num_batches = 4;
  int64_t batch_size = 8;
  // Stochastic checks: batches of frequency accumulation per side.
  int stochastic_batches = 150;
  // Reject statistical equivalence below this p-value.
  double significance = 0.01;
  // Run the eager-twin comparison for algorithms that have one (the most
  // expensive check; the ctest tier enables it on one dataset per
  // algorithm, the fuzzer disables it).
  bool check_eager_twin = true;
  // Feature-gather differential (gs::feature): gather the feature rows of
  // every sampled batch's node set through a hot-set cache — once cold, once
  // warm, under each admission policy — and require bit-identity with an
  // eager per-node lookup. Applicable only when the graph has features.
  bool check_feature_gather = true;
  // Tolerance for float payload comparison in the deterministic check.
  float value_tolerance = 1e-3f;
};

struct CheckResult {
  std::string name;
  bool applicable = true;   // false: check does not apply to this config
  bool ok = true;
  bool deterministic = true;  // bit-exact comparison vs. hypothesis test
  double p_value = 1.0;       // hypothesis tests only
  std::string detail;
  std::string ToString() const;
};

struct OracleReport {
  std::string algorithm;
  std::vector<CheckResult> checks;
  bool ok() const;
  std::string ToString() const;
};

// The eager reference twin of `optimized`: every optimization disabled,
// layout left as produced (Figure 10's 'P' mode), no super-batching, no pass
// truncation — same seed, so RNG streams mirror the optimized run.
core::SamplerOptions ReferenceOptions(const core::SamplerOptions& optimized);

// Runs every applicable check for one algorithm x graph x options config on
// the current device. HetGNN's relation graphs default to g.adj().
OracleReport VerifyConfig(const std::string& algorithm, const graph::Graph& g,
                          const core::SamplerOptions& optimized,
                          const OracleOptions& options = {});

// Snapshot equivalence (gs::dyn): asserts the store's current snapshot is
// bit-identical to a from-scratch Graph::FromEdges load of the same
// effective edge set — digest equality plus bit-exact sampled fingerprints
// under mirrored RNG streams. This is the property that makes incremental
// mutation maintenance trustworthy: however many MutationBatches (and
// Seals) produced the epoch, sampling it is indistinguishable from sampling
// a clean reload.
OracleReport VerifySnapshotEquivalence(const std::string& algorithm,
                                       const graph::GraphStore& store,
                                       const core::SamplerOptions& optimized,
                                       const OracleOptions& options = {});

// Primitive-level distribution checks, independent of any algorithm:
// alias-table vs. inverse-CDF sampling equivalence (chi-square homogeneity
// and a conservative KS test over the drawn indices) and Efraimidis-Spirakis
// without-replacement sampling against exactly enumerated pair
// probabilities. Used by the oracle ctest tier and as the fuzzer's
// self-check.
std::vector<CheckResult> VerifySamplingPrimitives(uint64_t seed, double significance = 0.01);

}  // namespace gs::oracle

#endif  // GSAMPLER_ORACLE_ORACLE_H_
