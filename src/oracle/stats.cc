#include "oracle/stats.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"

namespace gs::oracle {
namespace {

// Lower-tail series: P(a, x) = x^a e^-x / Γ(a) * sum_k x^k / (a)_{k+1}.
double GammaPSeries(double a, double x) {
  double ap = a;
  double sum = 1.0 / a;
  double term = sum;
  for (int i = 0; i < 500; ++i) {
    ap += 1.0;
    term *= x / ap;
    sum += term;
    if (std::abs(term) < std::abs(sum) * 1e-15) {
      break;
    }
  }
  return sum * std::exp(-x + a * std::log(x) - std::lgamma(a));
}

// Upper-tail continued fraction (modified Lentz).
double GammaQContinuedFraction(double a, double x) {
  constexpr double kTiny = 1e-300;
  double b = x + 1.0 - a;
  double c = 1.0 / kTiny;
  double d = 1.0 / b;
  double h = d;
  for (int i = 1; i <= 500; ++i) {
    const double an = -static_cast<double>(i) * (static_cast<double>(i) - a);
    b += 2.0;
    d = an * d + b;
    if (std::abs(d) < kTiny) {
      d = kTiny;
    }
    c = b + an / c;
    if (std::abs(c) < kTiny) {
      c = kTiny;
    }
    d = 1.0 / d;
    const double delta = d * c;
    h *= delta;
    if (std::abs(delta - 1.0) < 1e-15) {
      break;
    }
  }
  return h * std::exp(-x + a * std::log(x) - std::lgamma(a));
}

// Pools the tail of sparse categories so every chi-square cell carries at
// least `min_expected` expected mass. Cells are visited in descending
// expected order; once the running remainder drops below the threshold it
// becomes one pooled cell.
struct PooledCell {
  double expected = 0.0;
  double observed = 0.0;
};

}  // namespace

double RegularizedGammaQ(double a, double x) {
  GS_CHECK_GT(a, 0.0);
  GS_CHECK_GE(x, 0.0);
  if (x <= 0.0) {
    return 1.0;
  }
  if (x < a + 1.0) {
    return 1.0 - GammaPSeries(a, x);
  }
  return GammaQContinuedFraction(a, x);
}

double ChiSquarePValue(double statistic, int dof) {
  if (dof <= 0) {
    return 1.0;
  }
  return std::clamp(RegularizedGammaQ(static_cast<double>(dof) / 2.0, statistic / 2.0), 0.0,
                    1.0);
}

TestResult ChiSquareGoodnessOfFit(std::span<const int64_t> observed,
                                  std::span<const double> probs, double min_expected) {
  GS_CHECK_EQ(observed.size(), probs.size());
  int64_t trials = 0;
  double total_prob = 0.0;
  for (size_t i = 0; i < observed.size(); ++i) {
    GS_CHECK_GE(observed[i], 0);
    GS_CHECK_GE(probs[i], 0.0);
    trials += observed[i];
    total_prob += probs[i];
  }
  TestResult result;
  if (trials == 0 || total_prob <= 0.0) {
    return result;
  }
  // Visit categories in descending expected count; pool the sparse tail.
  std::vector<size_t> order(observed.size());
  for (size_t i = 0; i < order.size(); ++i) {
    order[i] = i;
  }
  std::sort(order.begin(), order.end(),
            [&](size_t a, size_t b) { return probs[a] > probs[b]; });
  std::vector<PooledCell> cells;
  PooledCell pool;
  for (size_t idx : order) {
    const double expected = probs[idx] / total_prob * static_cast<double>(trials);
    pool.expected += expected;
    pool.observed += static_cast<double>(observed[idx]);
    if (pool.expected >= min_expected) {
      cells.push_back(pool);
      pool = {};
    }
  }
  if (pool.expected > 0.0) {
    // Leftover mass folds into the last full cell to keep it above threshold.
    if (cells.empty()) {
      cells.push_back(pool);
    } else {
      cells.back().expected += pool.expected;
      cells.back().observed += pool.observed;
    }
  }
  if (cells.size() < 2) {
    return result;
  }
  for (const PooledCell& cell : cells) {
    const double d = cell.observed - cell.expected;
    result.statistic += d * d / cell.expected;
  }
  result.dof = static_cast<int>(cells.size()) - 1;
  result.p_value = ChiSquarePValue(result.statistic, result.dof);
  return result;
}

TestResult ChiSquareHomogeneity(std::span<const int64_t> a, std::span<const int64_t> b,
                                double min_expected) {
  GS_CHECK_EQ(a.size(), b.size());
  double total_a = 0.0;
  double total_b = 0.0;
  for (size_t i = 0; i < a.size(); ++i) {
    GS_CHECK_GE(a[i], 0);
    GS_CHECK_GE(b[i], 0);
    total_a += static_cast<double>(a[i]);
    total_b += static_cast<double>(b[i]);
  }
  TestResult result;
  const double total = total_a + total_b;
  if (total_a <= 0.0 || total_b <= 0.0) {
    return result;
  }
  // Pool on the combined counts so both rows of every cell stay dense.
  std::vector<size_t> order(a.size());
  for (size_t i = 0; i < order.size(); ++i) {
    order[i] = i;
  }
  std::sort(order.begin(), order.end(),
            [&](size_t x, size_t y) { return a[x] + b[x] > a[y] + b[y]; });
  struct Cell {
    double a = 0.0;
    double b = 0.0;
  };
  std::vector<Cell> cells;
  Cell pool;
  const double combined_threshold = min_expected * total / std::min(total_a, total_b);
  for (size_t idx : order) {
    pool.a += static_cast<double>(a[idx]);
    pool.b += static_cast<double>(b[idx]);
    if (pool.a + pool.b >= combined_threshold) {
      cells.push_back(pool);
      pool = {};
    }
  }
  if (pool.a + pool.b > 0.0) {
    if (cells.empty()) {
      cells.push_back(pool);
    } else {
      cells.back().a += pool.a;
      cells.back().b += pool.b;
    }
  }
  if (cells.size() < 2) {
    return result;
  }
  for (const Cell& cell : cells) {
    const double row = cell.a + cell.b;
    const double ea = row * total_a / total;
    const double eb = row * total_b / total;
    const double da = cell.a - ea;
    const double db = cell.b - eb;
    result.statistic += da * da / ea + db * db / eb;
  }
  result.dof = static_cast<int>(cells.size()) - 1;
  result.p_value = ChiSquarePValue(result.statistic, result.dof);
  return result;
}

TestResult KolmogorovSmirnov(std::vector<double> a, std::vector<double> b) {
  TestResult result;
  if (a.empty() || b.empty()) {
    return result;
  }
  std::sort(a.begin(), a.end());
  std::sort(b.begin(), b.end());
  const double na = static_cast<double>(a.size());
  const double nb = static_cast<double>(b.size());
  double d = 0.0;
  size_t ia = 0;
  size_t ib = 0;
  while (ia < a.size() && ib < b.size()) {
    const double va = a[ia];
    const double vb = b[ib];
    // Advance past ties in both samples before comparing the CDFs, so
    // discrete data produces the correct sup over the step function.
    if (va <= vb) {
      while (ia < a.size() && a[ia] == va) {
        ++ia;
      }
    }
    if (vb <= va) {
      while (ib < b.size() && b[ib] == vb) {
        ++ib;
      }
    }
    d = std::max(d, std::abs(static_cast<double>(ia) / na - static_cast<double>(ib) / nb));
  }
  result.statistic = d;
  const double ne = std::sqrt(na * nb / (na + nb));
  const double lambda = (ne + 0.12 + 0.11 / ne) * d;
  // Asymptotic Kolmogorov distribution: Q(λ) = 2 Σ (-1)^{j-1} e^{-2 j² λ²}.
  double p = 0.0;
  double sign = 1.0;
  for (int j = 1; j <= 100; ++j) {
    const double term = std::exp(-2.0 * j * j * lambda * lambda);
    p += sign * term;
    sign = -sign;
    if (term < 1e-12) {
      break;
    }
  }
  result.dof = 0;
  result.p_value = std::clamp(2.0 * p, 0.0, 1.0);
  return result;
}

}  // namespace gs::oracle
