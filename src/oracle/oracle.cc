#include "oracle/oracle.h"

#include <algorithm>
#include <cstring>
#include <map>
#include <set>
#include <sstream>
#include <utility>

#include "algorithms/algorithms.h"
#include "baselines/baselines.h"
#include "common/error.h"
#include "common/sampling.h"
#include "core/engine.h"
#include "feature/hot_set_cache.h"
#include "feature/store.h"

namespace gs::oracle {
namespace {

using core::CompiledPlan;
using core::CompiledSampler;
using core::SamplerOptions;
using core::Value;
using core::ValueKind;

// One mini-batch's outputs reduced to a comparable form: exact structure
// (kinds, ids, edge sets in global ids) plus float payloads for tolerance
// comparison.
struct BatchFingerprint {
  std::vector<ValueKind> kinds;
  std::vector<std::vector<int32_t>> ids;                             // kIds outputs
  std::vector<std::map<std::pair<int32_t, int32_t>, float>> edges;   // kMatrix outputs
  std::vector<std::vector<float>> tensors;                           // kTensor outputs
};

std::map<std::pair<int32_t, int32_t>, float> GlobalEdges(const sparse::Matrix& m) {
  std::map<std::pair<int32_t, int32_t>, float> out;
  const sparse::Coo& coo = m.GetCoo();
  for (int64_t e = 0; e < m.nnz(); ++e) {
    const int32_t r = m.GlobalRowId(coo.row[e]);
    const int32_t c = m.GlobalColId(coo.col[e]);
    out[{r, c}] = coo.values.defined() ? coo.values[e] : 1.0f;
  }
  return out;
}

BatchFingerprint Fingerprint(const std::vector<Value>& outputs) {
  BatchFingerprint fp;
  for (const Value& v : outputs) {
    fp.kinds.push_back(v.kind);
    switch (v.kind) {
      case ValueKind::kIds:
        fp.ids.push_back(v.ids.ToVector());
        break;
      case ValueKind::kMatrix:
        fp.edges.push_back(GlobalEdges(v.matrix));
        break;
      case ValueKind::kTensor: {
        std::vector<float> values;
        values.reserve(static_cast<size_t>(v.tensor.numel()));
        for (int64_t i = 0; i < v.tensor.numel(); ++i) {
          values.push_back(v.tensor.at(i));
        }
        fp.tensors.push_back(std::move(values));
        break;
      }
    }
  }
  return fp;
}

// Compares two fingerprints: structure exactly, float payloads within
// `tolerance`. Returns an empty string on match, a description of the first
// divergence otherwise.
std::string CompareFingerprints(const BatchFingerprint& a, const BatchFingerprint& b,
                                float tolerance) {
  std::ostringstream why;
  if (a.kinds != b.kinds) {
    why << "output kinds differ (" << a.kinds.size() << " vs " << b.kinds.size() << " outputs)";
    return why.str();
  }
  if (a.ids != b.ids) {
    why << "id outputs differ";
    return why.str();
  }
  if (a.edges.size() != b.edges.size()) {
    why << "matrix output count differs";
    return why.str();
  }
  for (size_t m = 0; m < a.edges.size(); ++m) {
    const auto& ea = a.edges[m];
    const auto& eb = b.edges[m];
    if (ea.size() != eb.size()) {
      why << "matrix " << m << ": nnz " << ea.size() << " vs " << eb.size();
      return why.str();
    }
    auto ia = ea.begin();
    auto ib = eb.begin();
    for (; ia != ea.end(); ++ia, ++ib) {
      if (ia->first != ib->first) {
        why << "matrix " << m << ": edge (" << ia->first.first << "," << ia->first.second
            << ") vs (" << ib->first.first << "," << ib->first.second << ")";
        return why.str();
      }
      if (std::abs(ia->second - ib->second) > tolerance) {
        why << "matrix " << m << ": value at (" << ia->first.first << "," << ia->first.second
            << "): " << ia->second << " vs " << ib->second;
        return why.str();
      }
    }
  }
  if (a.tensors.size() != b.tensors.size()) {
    why << "tensor output count differs";
    return why.str();
  }
  for (size_t t = 0; t < a.tensors.size(); ++t) {
    if (a.tensors[t].size() != b.tensors[t].size()) {
      why << "tensor " << t << ": numel differs";
      return why.str();
    }
    for (size_t i = 0; i < a.tensors[t].size(); ++i) {
      if (std::abs(a.tensors[t][i] - b.tensors[t][i]) > tolerance) {
        why << "tensor " << t << "[" << i << "]: " << a.tensors[t][i] << " vs "
            << b.tensors[t][i];
        return why.str();
      }
    }
  }
  return {};
}

// Random frontier over the graph's training ids (deterministic in `rng`).
tensor::IdArray MakeFrontiers(const graph::Graph& g, int64_t count, Rng& rng) {
  const device::Array<int32_t>& train = g.train_ids();
  GS_CHECK_GT(train.size(), 0) << "graph has no train ids";
  std::vector<int32_t> out;
  out.reserve(static_cast<size_t>(count));
  for (int64_t i = 0; i < count; ++i) {
    out.push_back(train[static_cast<int64_t>(rng.UniformInt(static_cast<uint64_t>(train.size())))]);
  }
  return tensor::IdArray::FromVector(out);
}

CompiledSampler MakeSampler(const std::string& algorithm, const graph::Graph& g,
                            const SamplerOptions& options) {
  algorithms::AlgorithmProgram ap = algorithms::MakeAlgorithm(algorithm, g);
  CompiledSampler sampler(std::move(ap.program), g, std::move(ap.tensors), options);
  if (algorithm == "HetGNN") {
    sampler.BindGraph("rel0", &g.adj());
    sampler.BindGraph("rel1", &g.adj());
  }
  return sampler;
}

std::vector<BatchFingerprint> RunEpoch(const std::string& algorithm, const graph::Graph& g,
                                       const SamplerOptions& options,
                                       const tensor::IdArray& frontiers, int64_t batch_size) {
  CompiledSampler sampler = MakeSampler(algorithm, g, options);
  std::vector<BatchFingerprint> fingerprints;
  sampler.SampleEpoch(frontiers, batch_size, [&](int64_t, std::vector<Value>& outputs) {
    fingerprints.push_back(Fingerprint(outputs));
  });
  return fingerprints;
}

// Per-node inclusion counting: a node counts once per mini-batch it appears
// in (any output), making the counts robust to representation multiplicity
// while still sensitive to distribution skew.
void CountBatchInclusions(const std::set<int32_t>& batch_nodes, std::vector<int64_t>& counts) {
  for (int32_t node : batch_nodes) {
    if (node >= 0 && static_cast<size_t>(node) < counts.size()) {
      counts[static_cast<size_t>(node)] += 1;
    }
  }
}

void CollectValueNodes(const Value& v, std::set<int32_t>& nodes) {
  switch (v.kind) {
    case ValueKind::kIds:
      for (int64_t i = 0; i < v.ids.size(); ++i) {
        nodes.insert(v.ids[i]);
      }
      break;
    case ValueKind::kMatrix: {
      const sparse::Coo& coo = v.matrix.GetCoo();
      for (int64_t e = 0; e < v.matrix.nnz(); ++e) {
        nodes.insert(v.matrix.GlobalRowId(coo.row[e]));
        nodes.insert(v.matrix.GlobalColId(coo.col[e]));
      }
      break;
    }
    case ValueKind::kTensor:
      break;  // no node identity
  }
}

std::vector<int64_t> AccumulateEngineInclusions(const std::string& algorithm,
                                                const graph::Graph& g,
                                                const SamplerOptions& options,
                                                const tensor::IdArray& frontiers,
                                                int64_t batch_size) {
  std::vector<int64_t> counts(static_cast<size_t>(g.num_nodes()), 0);
  CompiledSampler sampler = MakeSampler(algorithm, g, options);
  sampler.SampleEpoch(frontiers, batch_size, [&](int64_t, std::vector<Value>& outputs) {
    std::set<int32_t> nodes;
    for (const Value& v : outputs) {
      CollectValueNodes(v, nodes);
    }
    CountBatchInclusions(nodes, counts);
  });
  return counts;
}

std::vector<int64_t> AccumulateEagerInclusions(const std::string& algorithm,
                                               const graph::Graph& g, uint64_t seed,
                                               const tensor::IdArray& frontiers,
                                               int64_t batch_size) {
  std::vector<int64_t> counts(static_cast<size_t>(g.num_nodes()), 0);
  auto state = baselines::MakeEagerTwinState();
  const int64_t total = frontiers.size();
  int64_t batch_index = 0;
  for (int64_t start = 0; start < total; start += batch_size, ++batch_index) {
    const int64_t end = std::min(total, start + batch_size);
    std::vector<int32_t> slice;
    slice.reserve(static_cast<size_t>(end - start));
    for (int64_t i = start; i < end; ++i) {
      slice.push_back(frontiers[i]);
    }
    Rng rng = baselines::MirroredBatchRng(seed, static_cast<uint64_t>(batch_index));
    baselines::BaselineResult result = baselines::SampleEagerTwin(
        algorithm, g, tensor::IdArray::FromVector(slice), *state, rng);
    std::set<int32_t> nodes;
    for (const sparse::Matrix& layer : result.layers) {
      CollectValueNodes(Value::OfMatrix(layer), nodes);
    }
    for (const tensor::IdArray& trace : result.traces) {
      CollectValueNodes(Value::OfIds(trace), nodes);
    }
    CountBatchInclusions(nodes, counts);
  }
  return counts;
}

CheckResult StatisticalCheck(std::string name, const std::vector<int64_t>& a,
                             const std::vector<int64_t>& b, double significance,
                             const std::string& label_a, const std::string& label_b) {
  CheckResult check;
  check.name = std::move(name);
  check.deterministic = false;
  const TestResult test = ChiSquareHomogeneity(a, b);
  check.p_value = test.p_value;
  check.ok = test.p_value >= significance;
  std::ostringstream detail;
  detail << label_a << " vs " << label_b << ": chi2=" << test.statistic << " dof=" << test.dof
         << " p=" << test.p_value;
  check.detail = detail.str();
  return check;
}

}  // namespace

std::string CheckResult::ToString() const {
  std::ostringstream out;
  out << name << ": ";
  if (!applicable) {
    out << "n/a";
  } else if (ok) {
    out << "ok";
  } else {
    out << "FAIL";
  }
  if (!deterministic && applicable) {
    out << " (p=" << p_value << ")";
  }
  if (!detail.empty()) {
    out << " — " << detail;
  }
  return out.str();
}

bool OracleReport::ok() const {
  for (const CheckResult& check : checks) {
    if (check.applicable && !check.ok) {
      return false;
    }
  }
  return true;
}

std::string OracleReport::ToString() const {
  std::ostringstream out;
  out << "oracle[" << algorithm << "]: " << (ok() ? "ok" : "FAIL");
  for (const CheckResult& check : checks) {
    out << "\n  " << check.ToString();
  }
  return out.str();
}

SamplerOptions ReferenceOptions(const SamplerOptions& optimized) {
  SamplerOptions reference = optimized;
  reference.enable_fusion = false;
  reference.enable_preprocessing = false;
  reference.enable_layout_selection = false;
  reference.greedy_when_layout_disabled = false;
  reference.super_batch = 1;
  reference.pass_limit = -1;
  return reference;
}

OracleReport VerifyConfig(const std::string& algorithm, const graph::Graph& g,
                          const SamplerOptions& optimized, const OracleOptions& options) {
  OracleReport report;
  report.algorithm = algorithm;

  // Program-shape queries need a compiled plan; compile one throwaway copy
  // of the optimized config (cheap: passes only, no calibration).
  algorithms::AlgorithmProgram probe = algorithms::MakeAlgorithm(algorithm, g);
  CompiledPlan probe_plan(std::move(probe.program), optimized);
  const bool pure_walk = probe_plan.PureWalk();
  const bool super_batched = optimized.super_batch != 1 && probe_plan.SuperBatchEligible();

  Rng frontier_rng = Rng(options.seed).Fork(0xF0);
  const tensor::IdArray frontiers =
      MakeFrontiers(g, options.batch_size * options.num_batches, frontier_rng);

  // --- Check 1: optimized vs reference, mirrored streams, deterministic ---
  //
  // Pure-walk programs under super-batching concatenate frontiers and share
  // one RNG across the group, so their grouped run is only statistically
  // equivalent; the deterministic differential forces solo batches there
  // and the grouping is verified by the stochastic check below.
  {
    CheckResult check;
    check.name = "optimized-vs-reference";
    SamplerOptions solo = optimized;
    if (pure_walk) {
      solo.super_batch = 1;
    }
    const std::vector<BatchFingerprint> opt =
        RunEpoch(algorithm, g, solo, frontiers, options.batch_size);
    const std::vector<BatchFingerprint> ref =
        RunEpoch(algorithm, g, ReferenceOptions(optimized), frontiers, options.batch_size);
    if (opt.size() != ref.size()) {
      check.ok = false;
      check.detail = "batch count differs";
    } else {
      for (size_t b = 0; b < opt.size() && check.ok; ++b) {
        const std::string why = CompareFingerprints(opt[b], ref[b], options.value_tolerance);
        if (!why.empty()) {
          check.ok = false;
          check.detail = "batch " + std::to_string(b) + ": " + why;
        }
      }
    }
    report.checks.push_back(std::move(check));
  }

  // --- Check 2: super-batch grouping ---
  {
    CheckResult check;
    check.name = "super-batch-grouping";
    if (!super_batched) {
      check.applicable = false;
    } else if (!pure_walk) {
      // Per-segment RNG streams: grouped execution must be bit-identical to
      // solo batches.
      SamplerOptions solo = optimized;
      solo.super_batch = 1;
      const std::vector<BatchFingerprint> grouped =
          RunEpoch(algorithm, g, optimized, frontiers, options.batch_size);
      const std::vector<BatchFingerprint> sololized =
          RunEpoch(algorithm, g, solo, frontiers, options.batch_size);
      if (grouped.size() != sololized.size()) {
        check.ok = false;
        check.detail = "batch count differs";
      } else {
        for (size_t b = 0; b < grouped.size() && check.ok; ++b) {
          const std::string why =
              CompareFingerprints(grouped[b], sololized[b], options.value_tolerance);
          if (!why.empty()) {
            check.ok = false;
            check.detail = "batch " + std::to_string(b) + ": " + why;
          }
        }
      }
    } else {
      // Pure walk: the grouped run interleaves draws over the concatenated
      // frontier — compare per-node visit frequencies instead.
      Rng stochastic_rng = Rng(options.seed).Fork(0xF1);
      const tensor::IdArray wide = MakeFrontiers(
          g, options.batch_size * static_cast<int64_t>(options.stochastic_batches),
          stochastic_rng);
      SamplerOptions solo = optimized;
      solo.super_batch = 1;
      SamplerOptions grouped = optimized;
      grouped.seed = optimized.seed ^ 0x9E3779B97F4A7C15ULL;  // independent draws
      const std::vector<int64_t> a =
          AccumulateEngineInclusions(algorithm, g, solo, wide, options.batch_size);
      const std::vector<int64_t> b =
          AccumulateEngineInclusions(algorithm, g, grouped, wide, options.batch_size);
      check = StatisticalCheck("super-batch-grouping", a, b, options.significance,
                               "solo", "grouped");
    }
    report.checks.push_back(std::move(check));
  }

  // --- Check 3: eager-twin equivalence, mirrored streams ---
  {
    CheckResult check;
    check.name = "eager-twin";
    if (!options.check_eager_twin || !baselines::HasEagerTwin(algorithm)) {
      check.applicable = false;
    } else {
      Rng stochastic_rng = Rng(options.seed).Fork(0xF2);
      const tensor::IdArray wide = MakeFrontiers(
          g, options.batch_size * static_cast<int64_t>(options.stochastic_batches),
          stochastic_rng);
      SamplerOptions solo = optimized;
      solo.super_batch = 1;  // batch j draws exactly from Rng(seed).Fork(j)
      const std::vector<int64_t> engine =
          AccumulateEngineInclusions(algorithm, g, solo, wide, options.batch_size);
      const std::vector<int64_t> eager =
          AccumulateEagerInclusions(algorithm, g, solo.seed, wide, options.batch_size);
      check = StatisticalCheck("eager-twin", engine, eager, options.significance, "engine",
                               "eager");
    }
    report.checks.push_back(std::move(check));
  }

  // --- Check 4: feature gather through the hot-set cache ---
  //
  // Every sampled batch's node set is gathered twice (cold, then warm)
  // under each admission policy; the cache may change WHERE bytes are
  // charged, never WHAT rows come back — bit-identical to an eager lookup.
  {
    CheckResult check;
    check.name = "feature-gather";
    if (!options.check_feature_gather || !g.features().defined()) {
      check.applicable = false;
    } else {
      const std::vector<BatchFingerprint> batches =
          RunEpoch(algorithm, g, ReferenceOptions(optimized), frontiers, options.batch_size);
      const int64_t n_nodes = g.num_nodes();
      const int64_t dim = g.features().cols();
      feature::FeatureStore store(g.features());
      for (feature::Admission admission :
           {feature::Admission::kStaticDegree, feature::Admission::kLru,
            feature::Admission::kFrequencyEma}) {
        if (!check.ok) {
          break;
        }
        feature::HotSetCache cache(feature::HotSetCacheOptions{
            .capacity = std::max<int64_t>(n_nodes / 10, 64), .admission = admission});
        for (int pass = 0; pass < 2 && check.ok; ++pass) {
          for (size_t b = 0; b < batches.size() && check.ok; ++b) {
            // The batch's node set: id outputs plus matrix edge endpoints,
            // folded to base node ids (negatives are walk dead-end markers).
            std::set<int32_t> nodes;
            for (const std::vector<int32_t>& out : batches[b].ids) {
              for (const int32_t v : out) {
                if (v >= 0) {
                  nodes.insert(static_cast<int32_t>(v % n_nodes));
                }
              }
            }
            for (const auto& edges : batches[b].edges) {
              for (const auto& [edge, weight] : edges) {
                (void)weight;
                if (edge.first >= 0) {
                  nodes.insert(static_cast<int32_t>(edge.first % n_nodes));
                }
                if (edge.second >= 0) {
                  nodes.insert(static_cast<int32_t>(edge.second % n_nodes));
                }
              }
            }
            if (nodes.empty()) {
              continue;
            }
            const std::vector<int32_t> ids(nodes.begin(), nodes.end());
            const tensor::Tensor gathered =
                store.Gather(tensor::IdArray::FromVector(ids), &cache);
            for (size_t i = 0; i < ids.size() && check.ok; ++i) {
              const float* got = gathered.data() + static_cast<int64_t>(i) * dim;
              const float* want = g.features().data() + static_cast<int64_t>(ids[i]) * dim;
              if (std::memcmp(got, want, static_cast<size_t>(dim) * sizeof(float)) != 0) {
                check.ok = false;
                std::ostringstream detail;
                detail << feature::AdmissionName(admission) << " pass " << pass << " batch "
                       << b << ": row " << i << " (node " << ids[i]
                       << ") diverges from the eager lookup";
                check.detail = detail.str();
              }
            }
          }
        }
      }
    }
    report.checks.push_back(std::move(check));
  }

  return report;
}

OracleReport VerifySnapshotEquivalence(const std::string& algorithm,
                                       const graph::GraphStore& store,
                                       const SamplerOptions& optimized,
                                       const OracleOptions& options) {
  OracleReport report;
  report.algorithm = algorithm;

  const std::shared_ptr<const graph::Snapshot> snap = store.Current();
  const graph::Graph& live = snap->graph();

  // From-scratch reference: reload the effective edge set through the very
  // same FromEdges path a cold restart would take, then carry over the
  // epoch's node attributes (the check is about adjacency maintenance).
  std::vector<float> weights;
  std::vector<std::pair<int32_t, int32_t>> edges =
      store.EffectiveEdges(store.weighted() ? &weights : nullptr);
  graph::Graph reload =
      graph::Graph::FromEdges(live.name() + "-reload", store.num_nodes(), std::move(edges),
                              store.weighted() ? &weights : nullptr);
  if (live.features().defined()) {
    reload.SetFeatures(live.features());
  }
  if (live.labels().defined()) {
    reload.SetLabels(live.labels(), live.num_classes());
  }
  reload.SetTrainIds(live.train_ids());

  // --- Check 1: digest equality with the from-scratch load ---
  {
    CheckResult check;
    check.name = "snapshot-digest";
    const uint64_t reloaded = graph::Snapshot::DigestOf(reload);
    if (reloaded != snap->digest()) {
      check.ok = false;
      std::ostringstream detail;
      detail << "epoch " << snap->epoch() << ": snapshot digest " << std::hex << snap->digest()
             << " != from-scratch digest " << reloaded << std::dec << " ("
             << live.num_edges() << " vs " << reload.num_edges() << " edges)";
      check.detail = detail.str();
    }
    report.checks.push_back(std::move(check));
  }

  // --- Check 2: bit-identical sampling under mirrored streams ---
  //
  // Identical CSC bytes must yield identical draws, so unlike the
  // optimized-vs-reference differential this one compares floats exactly
  // (tolerance 0): both sides run the SAME plan configuration over graphs
  // that check 1 proved byte-equal.
  {
    CheckResult check;
    check.name = "snapshot-sample";
    Rng frontier_rng = Rng(options.seed).Fork(0xD1);
    const tensor::IdArray frontiers =
        MakeFrontiers(live, options.batch_size * options.num_batches, frontier_rng);
    const std::vector<BatchFingerprint> on_snapshot =
        RunEpoch(algorithm, live, optimized, frontiers, options.batch_size);
    const std::vector<BatchFingerprint> on_reload =
        RunEpoch(algorithm, reload, optimized, frontiers, options.batch_size);
    if (on_snapshot.size() != on_reload.size()) {
      check.ok = false;
      check.detail = "batch count differs";
    } else {
      for (size_t b = 0; b < on_snapshot.size() && check.ok; ++b) {
        const std::string why = CompareFingerprints(on_snapshot[b], on_reload[b], 0.0f);
        if (!why.empty()) {
          check.ok = false;
          check.detail = "batch " + std::to_string(b) + ": " + why;
        }
      }
    }
    report.checks.push_back(std::move(check));
  }

  return report;
}

std::vector<CheckResult> VerifySamplingPrimitives(uint64_t seed, double significance) {
  std::vector<CheckResult> checks;
  Rng rng(seed);

  // --- Alias table vs inverse-CDF single draws over one weight vector ---
  {
    constexpr size_t kCategories = 12;
    constexpr int64_t kTrials = 30000;
    std::vector<float> weights(kCategories);
    double total = 0.0;
    for (float& w : weights) {
      w = 0.1f + 1.9f * rng.UniformF();
      total += w;
    }
    AliasTable table{std::span<const float>(weights)};
    Rng alias_rng = rng.Fork(1);
    Rng cdf_rng = rng.Fork(2);
    std::vector<int64_t> alias_counts(kCategories, 0);
    std::vector<int64_t> cdf_counts(kCategories, 0);
    std::vector<double> alias_samples;
    std::vector<double> cdf_samples;
    alias_samples.reserve(kTrials);
    cdf_samples.reserve(kTrials);
    for (int64_t t = 0; t < kTrials; ++t) {
      const int32_t a = table.Sample(alias_rng);
      const int32_t c = SampleWeightedOne(weights, cdf_rng);
      alias_counts[static_cast<size_t>(a)] += 1;
      cdf_counts[static_cast<size_t>(c)] += 1;
      alias_samples.push_back(static_cast<double>(a));
      cdf_samples.push_back(static_cast<double>(c));
    }
    std::vector<double> probs(kCategories);
    for (size_t i = 0; i < kCategories; ++i) {
      probs[i] = static_cast<double>(weights[i]) / total;
    }
    const TestResult alias_gof = ChiSquareGoodnessOfFit(alias_counts, probs);
    const TestResult cdf_gof = ChiSquareGoodnessOfFit(cdf_counts, probs);
    const TestResult homogeneity = ChiSquareHomogeneity(alias_counts, cdf_counts);
    const TestResult ks = KolmogorovSmirnov(std::move(alias_samples), std::move(cdf_samples));
    const auto push = [&](const char* name, const TestResult& test) {
      CheckResult check;
      check.name = name;
      check.deterministic = false;
      check.p_value = test.p_value;
      check.ok = test.p_value >= significance;
      std::ostringstream detail;
      detail << "stat=" << test.statistic << " p=" << test.p_value;
      check.detail = detail.str();
      checks.push_back(std::move(check));
    };
    push("alias-gof", alias_gof);
    push("inverse-cdf-gof", cdf_gof);
    push("alias-vs-cdf-homogeneity", homogeneity);
    push("alias-vs-cdf-ks", ks);
  }

  // --- Efraimidis-Spirakis without-replacement pairs vs exact enumeration ---
  {
    const std::vector<float> weights = {0.4f, 1.1f, 0.7f, 2.0f, 0.2f, 1.6f};
    const size_t n = weights.size();
    constexpr int64_t kTrials = 20000;
    double total = 0.0;
    for (float w : weights) {
      total += w;
    }
    // P({a, b}) for a WOR sample of size 2 = sum over both draw orders of
    // the sequential selection probabilities (E-S keys realize exactly this
    // distribution).
    std::vector<double> pair_probs;
    std::vector<std::pair<size_t, size_t>> pair_index;
    for (size_t a = 0; a < n; ++a) {
      for (size_t b = a + 1; b < n; ++b) {
        const double wa = weights[a];
        const double wb = weights[b];
        pair_probs.push_back(wa / total * wb / (total - wa) + wb / total * wa / (total - wb));
        pair_index.emplace_back(a, b);
      }
    }
    Rng wor_rng = rng.Fork(3);
    std::vector<int64_t> pair_counts(pair_probs.size(), 0);
    std::vector<int32_t> picks;
    for (int64_t t = 0; t < kTrials; ++t) {
      picks.clear();
      SampleWeightedWithoutReplacement(weights, 2, wor_rng, picks);
      GS_CHECK_EQ(picks.size(), 2u);
      const size_t a = static_cast<size_t>(std::min(picks[0], picks[1]));
      const size_t b = static_cast<size_t>(std::max(picks[0], picks[1]));
      for (size_t i = 0; i < pair_index.size(); ++i) {
        if (pair_index[i] == std::make_pair(a, b)) {
          pair_counts[i] += 1;
          break;
        }
      }
    }
    const TestResult gof = ChiSquareGoodnessOfFit(pair_counts, pair_probs);
    CheckResult check;
    check.name = "efraimidis-spirakis-pairs";
    check.deterministic = false;
    check.p_value = gof.p_value;
    check.ok = gof.p_value >= significance;
    std::ostringstream detail;
    detail << "stat=" << gof.statistic << " dof=" << gof.dof << " p=" << gof.p_value;
    check.detail = detail.str();
    checks.push_back(std::move(check));
  }

  return checks;
}

}  // namespace gs::oracle
