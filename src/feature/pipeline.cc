#include "feature/pipeline.h"

#include <utility>

#include "common/error.h"
#include "pipeline/executor.h"

namespace gs::feature {

OverlapReport RunSampleGatherPipeline(
    int64_t num_batches, const std::function<tensor::IdArray(int64_t)>& sample_fn,
    const FeatureStore& store, HotSetCache* cache,
    const std::function<void(int64_t, const tensor::Tensor&)>& consume_fn,
    const OverlapOptions& options) {
  GS_CHECK_GE(num_batches, 0);
  GS_CHECK(sample_fn != nullptr);
  GS_CHECK(consume_fn != nullptr);

  // Caller-owned slots: exactly one stage touches an item at a time (the
  // queue handoff is the happens-before edge), so no locking here. The
  // gather stage is the single writer of `report.gather`.
  std::vector<tensor::IdArray> frontiers(static_cast<size_t>(num_batches));
  OverlapReport report;

  pipeline::Stage sample_stage{
      "sample", [&](int64_t i) { frontiers[static_cast<size_t>(i)] = sample_fn(i); }};
  pipeline::Stage gather_stage{"feature-gather", [&](int64_t i) {
                                 tensor::IdArray& ids = frontiers[static_cast<size_t>(i)];
                                 const tensor::Tensor features =
                                     store.Gather(ids, cache, &report.gather);
                                 consume_fn(i, features);
                                 ids = {};  // release the frontier slot
                               }};

  pipeline::Executor executor({std::move(sample_stage), std::move(gather_stage)},
                              pipeline::Options{.depth = options.depth});
  executor.Run(num_batches);
  report.metrics = executor.metrics();
  return report;
}

}  // namespace gs::feature
