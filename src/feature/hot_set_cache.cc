#include "feature/hot_set_cache.h"

#include <algorithm>
#include <utility>

#include "common/error.h"
#include "device/device.h"
#include "fault/fault.h"
#include "fault/status.h"

namespace gs::feature {
namespace {

constexpr uint64_t kEmptyTag = ~uint64_t{0};

uint64_t MixHash(uint64_t x) {
  x ^= x >> 33;
  x *= 0xFF51AFD7ED558CCDull;
  x ^= x >> 33;
  return x;
}

// Backing stores are split into pages so memory pressure can release part of
// the cache: the OOM ladder drops whole pages (real allocator bytes) instead
// of all-or-nothing.
constexpr int64_t kBackingPages = 8;

}  // namespace

const char* AdmissionName(Admission admission) {
  switch (admission) {
    case Admission::kStaticDegree:
      return "static-degree";
    case Admission::kLru:
      return "lru";
    case Admission::kFrequencyEma:
      return "frequency-ema";
  }
  return "unknown";
}

Admission AdmissionFromName(const std::string& name) {
  if (name == "static-degree") {
    return Admission::kStaticDegree;
  }
  if (name == "lru") {
    return Admission::kLru;
  }
  if (name == "frequency-ema") {
    return Admission::kFrequencyEma;
  }
  throw Error("unknown admission policy: " + name +
              " (expected static-degree | lru | frequency-ema)");
}

HotSetCache::HotSetCache(HotSetCacheOptions options) : options_(options) {
  GS_CHECK_GT(options_.capacity, 0);
  GS_CHECK_GE(options_.entry_bytes, 0);
  live_capacity_.store(options_.capacity, std::memory_order_relaxed);
  half_life_ = options_.ema_half_life > 0 ? options_.ema_half_life
                                          : std::max<int64_t>(options_.capacity, 256);
  if (options_.admission == Admission::kStaticDegree) {
    num_tag_slots_ = options_.capacity;
    tags_ = std::make_unique<std::atomic<uint64_t>[]>(static_cast<size_t>(num_tag_slots_));
    for (int64_t i = 0; i < num_tag_slots_; ++i) {
      tags_[static_cast<size_t>(i)].store(kEmptyTag, std::memory_order_relaxed);
    }
  }
  if (options_.entry_bytes > 0) {
    allocator_ = &device::Current().allocator();
    page_entries_ = (options_.capacity + kBackingPages - 1) / kBackingPages;
    int64_t covered = 0;
    int64_t total_bytes = 0;
    while (covered < options_.capacity) {
      const int64_t entries = std::min(page_entries_, options_.capacity - covered);
      pages_.push_back(
          device::Array<uint8_t>::Empty(entries * options_.entry_bytes));
      covered += entries;
      total_bytes += entries * options_.entry_bytes;
    }
    live_pages_ = static_cast<int64_t>(pages_.size());
    allocator_->AdjustReserved(total_bytes);
  }
  if (options_.register_pressure_handler) {
    if (allocator_ == nullptr) {
      allocator_ = &device::Current().allocator();
    }
    pressure_handler_id_ = allocator_->RegisterPressureHandler(
        [this](int64_t bytes_needed) { return ReleaseMemory(bytes_needed); });
  }
}

HotSetCache::~HotSetCache() {
  if (pressure_handler_id_ != 0) {
    // Blocks until any in-flight pressure invocation returns, so the lambda
    // can never touch a dead cache.
    allocator_->UnregisterPressureHandler(pressure_handler_id_);
  }
  if (allocator_ != nullptr && !pages_.empty()) {
    int64_t live_bytes = 0;
    for (int64_t i = 0; i < live_pages_; ++i) {
      live_bytes += pages_[static_cast<size_t>(i)].bytes();
    }
    if (live_bytes > 0) {
      allocator_->AdjustReserved(-live_bytes);
    }
  }
}

int64_t HotSetCache::Access(uint64_t key, int64_t bytes) {
  if (fault::Injected(fault::Site::kTransferError)) {
    throw fault::TransientError("injected UVA transfer fault (transfer.error)");
  }
  if (options_.admission == Admission::kStaticDegree) {
    const int64_t slots = live_capacity_.load(std::memory_order_relaxed);
    const size_t slot = static_cast<size_t>(MixHash(key) % static_cast<uint64_t>(slots));
    if (tags_[slot].load(std::memory_order_relaxed) == key) {
      hits_.fetch_add(1, std::memory_order_relaxed);
      return 0;
    }
    misses_.fetch_add(1, std::memory_order_relaxed);
    tags_[slot].store(key, std::memory_order_relaxed);
    return bytes;
  }

  std::lock_guard<std::mutex> lock(mutex_);
  const int64_t capacity = live_capacity_.load(std::memory_order_relaxed);
  if (options_.admission == Admission::kLru) {
    auto it = lru_table_.find(key);
    if (it != lru_table_.end()) {
      lru_order_.splice(lru_order_.begin(), lru_order_, it->second);
      hits_.fetch_add(1, std::memory_order_relaxed);
      return 0;
    }
    misses_.fetch_add(1, std::memory_order_relaxed);
    lru_order_.push_front(key);
    lru_table_[key] = lru_order_.begin();
    ++insertions_;
    EvictToCapacityLocked(capacity);
    return bytes;
  }

  // kFrequencyEma.
  if (++accesses_since_decay_ >= half_life_) {
    DecayLocked();
  }
  const double candidate = (freq_[key] += 1.0);
  if (resident_.count(key) != 0) {
    hits_.fetch_add(1, std::memory_order_relaxed);
    return 0;
  }
  misses_.fetch_add(1, std::memory_order_relaxed);
  if (static_cast<int64_t>(resident_.size()) < capacity) {
    resident_[key] = true;
    weakest_.push({candidate, key});
    ++insertions_;
  } else if (capacity > 0) {
    // Admission filter: displace the weakest resident only when the
    // candidate's decayed frequency strictly beats it. One-touch keys
    // (candidate == 1 against an established hot set) bounce off, which is
    // what keeps hubs resident through scans.
    const uint64_t weakest = WeakestResidentLocked();
    if (candidate > freq_[weakest]) {
      resident_.erase(weakest);
      ++evictions_;
      resident_[key] = true;
      weakest_.push({candidate, key});
      ++insertions_;
    }
  }
  return bytes;
}

void HotSetCache::Invalidate(uint64_t key) {
  invalidations_.fetch_add(1, std::memory_order_relaxed);
  if (options_.admission == Admission::kStaticDegree) {
    const int64_t slots = live_capacity_.load(std::memory_order_relaxed);
    const size_t slot = static_cast<size_t>(MixHash(key) % static_cast<uint64_t>(slots));
    // CAS so a concurrent install of a DIFFERENT key in the same slot is
    // not clobbered; losing the race to a re-install of the same key is the
    // same cache race Access already tolerates.
    uint64_t expected = key;
    tags_[slot].compare_exchange_strong(expected, kEmptyTag, std::memory_order_relaxed);
    return;
  }
  std::lock_guard<std::mutex> lock(mutex_);
  if (options_.admission == Admission::kLru) {
    auto it = lru_table_.find(key);
    if (it != lru_table_.end()) {
      lru_order_.erase(it->second);
      lru_table_.erase(it);
      ++evictions_;
    }
    return;
  }
  // kFrequencyEma: drop residency but keep the decayed frequency — the row
  // is still hot, its cached bytes are just stale; it should win
  // re-admission on the next access.
  if (resident_.erase(key) > 0) {
    ++evictions_;
  }
}

void HotSetCache::Reset() {
  for (int64_t i = 0; i < num_tag_slots_; ++i) {
    tags_[static_cast<size_t>(i)].store(kEmptyTag, std::memory_order_relaxed);
  }
  if (options_.admission != Admission::kStaticDegree) {
    std::lock_guard<std::mutex> lock(mutex_);
    lru_order_.clear();
    lru_table_.clear();
    freq_.clear();
    resident_.clear();
    weakest_ = {};
    accesses_since_decay_ = 0;
    insertions_ = 0;
    evictions_ = 0;
  }
  hits_.store(0, std::memory_order_relaxed);
  misses_.store(0, std::memory_order_relaxed);
}

void HotSetCache::Shrink() {
  if (options_.admission == Admission::kStaticDegree && pages_.empty()) {
    // The original lock-free UVA-cache path: CAS-halve the live slot count.
    // Keys remap, so the effect is a cache flush plus a permanently higher
    // miss rate — the graceful-degradation rung of the OOM ladder.
    int64_t slots = live_capacity_.load(std::memory_order_relaxed);
    while (slots > kMinCapacity) {
      const int64_t next = std::max(kMinCapacity, slots / 2);
      if (live_capacity_.compare_exchange_weak(slots, next, std::memory_order_relaxed)) {
        return;
      }
    }
    return;
  }
  int64_t released = 0;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    const int64_t live = live_capacity_.load(std::memory_order_relaxed);
    released = ShrinkToLocked(std::max(kMinCapacity, live / 2));
  }
  if (released > 0) {
    allocator_->AdjustReserved(-released);
  }
}

int64_t HotSetCache::ReleaseMemory(int64_t bytes_needed) {
  pressure_releases_.fetch_add(1, std::memory_order_relaxed);
  if (pages_.empty()) {
    // Cost-model-only cache: no real bytes to give back; shrink the
    // simulated footprint instead.
    Shrink();
    return 0;
  }
  int64_t released = 0;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    while (live_pages_ > 1 && released < bytes_needed) {
      released += pages_[static_cast<size_t>(live_pages_ - 1)].bytes();
      pages_[static_cast<size_t>(live_pages_ - 1)] = {};
      --live_pages_;
    }
    const int64_t capacity =
        std::min(options_.capacity, live_pages_ * page_entries_);
    live_capacity_.store(capacity, std::memory_order_relaxed);
    EvictToCapacityLocked(capacity);
  }
  if (released > 0) {
    allocator_->AdjustReserved(-released);
  }
  return released;
}

int64_t HotSetCache::ShrinkToLocked(int64_t target_capacity) {
  int64_t released = 0;
  int64_t capacity = target_capacity;
  if (!pages_.empty()) {
    // Page granularity: drop trailing pages while what remains still covers
    // the target, then land on the page-derived capacity.
    while (live_pages_ > 1 &&
           std::min(options_.capacity, (live_pages_ - 1) * page_entries_) >=
               target_capacity) {
      released += pages_[static_cast<size_t>(live_pages_ - 1)].bytes();
      pages_[static_cast<size_t>(live_pages_ - 1)] = {};
      --live_pages_;
    }
    capacity = std::min(options_.capacity, live_pages_ * page_entries_);
  }
  live_capacity_.store(capacity, std::memory_order_relaxed);
  EvictToCapacityLocked(capacity);
  return released;
}

void HotSetCache::EvictToCapacityLocked(int64_t capacity) {
  if (options_.admission == Admission::kLru) {
    while (static_cast<int64_t>(lru_table_.size()) > capacity) {
      const uint64_t victim = lru_order_.back();
      lru_order_.pop_back();
      lru_table_.erase(victim);
      ++evictions_;
    }
    return;
  }
  if (options_.admission == Admission::kFrequencyEma) {
    while (static_cast<int64_t>(resident_.size()) > capacity) {
      const uint64_t victim = WeakestResidentLocked();
      resident_.erase(victim);
      ++evictions_;
    }
  }
  // kStaticDegree: shrinking live_capacity_ remaps slots; nothing to evict.
}

uint64_t HotSetCache::WeakestResidentLocked() {
  GS_INTERNAL(!resident_.empty());
  while (true) {
    GS_INTERNAL(!weakest_.empty());
    const auto [pushed_freq, key] = weakest_.top();
    weakest_.pop();
    if (resident_.count(key) == 0) {
      continue;  // stale: evicted since it was pushed
    }
    const auto it = freq_.find(key);
    const double current = it != freq_.end() ? it->second : 0.0;
    if (pushed_freq != current) {
      weakest_.push({current, key});  // stale frequency: refresh and retry
      continue;
    }
    weakest_.push({pushed_freq, key});  // keep the heap's resident invariant
    return key;
  }
}

void HotSetCache::DecayLocked() {
  accesses_since_decay_ = 0;
  for (auto it = freq_.begin(); it != freq_.end();) {
    it->second *= 0.5;
    // Prune cold non-resident history so the frequency map stays bounded by
    // the working set, not the key universe.
    if (it->second < 0.05 && resident_.count(it->first) == 0) {
      it = freq_.erase(it);
    } else {
      ++it;
    }
  }
}

HotSetCacheStats HotSetCache::stats() const {
  HotSetCacheStats s;
  s.hits = hits_.load(std::memory_order_relaxed);
  s.misses = misses_.load(std::memory_order_relaxed);
  s.capacity = live_capacity_.load(std::memory_order_relaxed);
  s.invalidations = invalidations_.load(std::memory_order_relaxed);
  s.pressure_releases = pressure_releases_.load(std::memory_order_relaxed);
  std::lock_guard<std::mutex> lock(mutex_);
  if (options_.admission == Admission::kStaticDegree) {
    // Every miss installs into its slot.
    s.insertions = s.misses;
    for (int64_t i = 0; i < s.capacity; ++i) {
      if (tags_[static_cast<size_t>(i)].load(std::memory_order_relaxed) != kEmptyTag) {
        ++s.resident;
      }
    }
  } else {
    s.insertions = insertions_;
    s.evictions = evictions_;
    s.resident = options_.admission == Admission::kLru
                     ? static_cast<int64_t>(lru_table_.size())
                     : static_cast<int64_t>(resident_.size());
  }
  for (int64_t i = 0; i < live_pages_; ++i) {
    s.backing_bytes += pages_[static_cast<size_t>(i)].bytes();
  }
  return s;
}

}  // namespace gs::feature
