// gs::feature::HotSetCache — the one hot-set cache abstraction.
//
// Graph learning workloads have two hot sets with the same shape: the
// adjacency lists of popular nodes (the paper's Section 5.2 skewed-access
// observation, previously modeled by the bespoke device::UvaCache) and the
// feature rows of popular nodes (BGL / cache-first edge sampling,
// PAPERS.md). This class serves both clients: kernels ask the cache how
// many bytes an access actually costs — hits cost nothing, misses cost the
// full transfer — and the admission policy decides which keys stay hot.
//
// Admission policies:
//  - kStaticDegree: the direct-mapped tag array the UVA adjacency cache has
//    always used. Admission is stateless (every miss installs into the
//    key's hash slot), so under power-law access the steady-state contents
//    converge to the high-degree hot set — hence the name. This policy
//    reproduces the old UvaCache behavior bit-for-bit: same hash, same
//    slot count, same install-on-miss, same Shrink halving.
//  - kLru: exact least-recently-used over `capacity` keys. Recency-only;
//    admits every miss, so scans evict the hot set.
//  - kFrequencyEma: admission by exponentially-decayed access frequency
//    (TinyLFU-flavored). Every key's frequency halves each `ema_half_life`
//    accesses; a miss is admitted only when the candidate's frequency beats
//    the weakest resident's, so one-touch keys never displace hubs — the
//    policy that holds the >=90% hit rate at a 10% budget in
//    bench/feature_cache.
//
// Byte accounting (options.entry_bytes > 0): the cache owns a real device
// backing store of capacity * entry_bytes, allocated in pages from the
// current device's caching allocator, and mirrors the live backing into the
// allocator's reserved-bytes attribution — exactly like the serving plan
// cache pins its resident plans. With register_pressure_handler set, the
// cache joins the allocator's OOM ladder: a pressure round drops backing
// pages (ReleaseMemory), releasing real bytes and shrinking capacity, so
// eviction order across the plan cache and feature caches is the handlers'
// registration order and the released byte counts are deterministic.
//
// Thread-safety: the static-degree path is lock-free atomics (a concurrent
// install may evict another thread's entry, like a real cache race — this
// only perturbs the simulated hit rate, never correctness). The LRU / EMA
// paths serialize under one mutex. Access is the transfer.error fault
// injection site (a failed PCIe gather), matching the old UVA cache.

#ifndef GSAMPLER_FEATURE_HOT_SET_CACHE_H_
#define GSAMPLER_FEATURE_HOT_SET_CACHE_H_

#include <atomic>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <queue>
#include <string>
#include <unordered_map>
#include <vector>

#include "device/array.h"

namespace gs::feature {

enum class Admission {
  kStaticDegree,
  kLru,
  kFrequencyEma,
};

const char* AdmissionName(Admission admission);
// Inverse of AdmissionName ("static-degree" / "lru" / "frequency-ema");
// throws gs::Error on anything else.
Admission AdmissionFromName(const std::string& name);

struct HotSetCacheOptions {
  // Resident entries (keys) the cache can hold.
  int64_t capacity = 0;
  Admission admission = Admission::kStaticDegree;
  // Bytes one resident entry occupies on the device (a feature row). > 0
  // allocates a real backing store from the current device's allocator and
  // mirrors it into reserved-bytes; 0 keeps the cache cost-model-only (the
  // adjacency client).
  int64_t entry_bytes = 0;
  // Join the current device's allocator OOM ladder. Byte-accounted caches
  // release backing pages under pressure; cost-model-only caches Shrink.
  bool register_pressure_handler = false;
  // kFrequencyEma: frequencies halve every this many accesses. 0 picks
  // max(capacity, 256).
  int64_t ema_half_life = 0;
};

struct HotSetCacheStats {
  int64_t hits = 0;
  int64_t misses = 0;
  int64_t insertions = 0;
  int64_t evictions = 0;  // entries displaced by admission or capacity loss
  int64_t invalidations = 0;  // Invalidate() calls (mutated keys dropped)
  int64_t capacity = 0;   // current live capacity (entries)
  int64_t resident = 0;   // resident entries (kStaticDegree: installed slots)
  int64_t backing_bytes = 0;  // live device backing (0 when cost-model-only)
  int64_t pressure_releases = 0;

  double HitRate() const {
    return hits + misses > 0 ? static_cast<double>(hits) / static_cast<double>(hits + misses)
                             : 0.0;
  }
};

class HotSetCache {
 public:
  explicit HotSetCache(HotSetCacheOptions options);
  // Adjacency-cache compatibility: `slots` entries, static-degree admission,
  // no byte accounting — the exact semantics of the old device::UvaCache.
  explicit HotSetCache(int64_t slots) : HotSetCache(HotSetCacheOptions{.capacity = slots}) {}
  ~HotSetCache();

  HotSetCache(const HotSetCache&) = delete;
  HotSetCache& operator=(const HotSetCache&) = delete;

  // Returns the transfer bytes to charge for touching `bytes` worth of data
  // identified by `key` (0 on a hit), updating residency per the admission
  // policy. Under an active fault::FaultScope this is the transfer.error
  // injection site and may throw fault::TransientError.
  int64_t Access(uint64_t key, int64_t bytes);

  // Drops `key`'s resident entry, if any — the row's cached bytes are stale
  // (gs::dyn: the node's feature row or adjacency was mutated). The next
  // Access for the key is a miss and re-fetches current bytes. Under
  // kFrequencyEma residency is dropped but the decayed frequency is kept,
  // so a still-hot key wins immediate re-admission. Thread-safe with
  // concurrent Access (the static-degree path stays lock-free).
  void Invalidate(uint64_t key);

  // Drops every resident entry and zeroes the counters (capacity and
  // backing are kept).
  void Reset();

  // Memory-pressure response: halves the live capacity (down to a small
  // floor), evicting what no longer fits. Byte-accounted caches drop
  // backing pages, so shrinking releases real allocator bytes. Thread-safe
  // with concurrent Access.
  void Shrink();

  // OOM-ladder rung (registered when the options ask for it): drops backing
  // pages until at least `bytes_needed` were released or one page remains;
  // returns the real bytes released (0 for cost-model-only caches, which
  // Shrink instead).
  int64_t ReleaseMemory(int64_t bytes_needed);

  Admission admission() const { return options_.admission; }
  int64_t num_slots() const { return live_capacity_.load(std::memory_order_relaxed); }
  int64_t hits() const { return hits_.load(std::memory_order_relaxed); }
  int64_t misses() const { return misses_.load(std::memory_order_relaxed); }
  int64_t entry_bytes() const { return options_.entry_bytes; }

  HotSetCacheStats stats() const;

 private:
  static constexpr int64_t kMinCapacity = 64;

  // Evicts entries until the policy structures fit `capacity` (mutex held).
  void EvictToCapacityLocked(int64_t capacity);
  // Weakest resident key by decayed frequency (mutex held; resident map
  // must be non-empty).
  uint64_t WeakestResidentLocked();
  void DecayLocked();
  // Drops `target` capacity worth of backing pages / live slots; returns
  // backing bytes released. Shared by Shrink and ReleaseMemory.
  int64_t ShrinkToLocked(int64_t target_capacity);

  HotSetCacheOptions options_;
  std::atomic<int64_t> live_capacity_{0};
  std::atomic<int64_t> hits_{0};
  std::atomic<int64_t> misses_{0};
  std::atomic<int64_t> invalidations_{0};

  // --- kStaticDegree: lock-free direct-mapped tag array.
  std::unique_ptr<std::atomic<uint64_t>[]> tags_;
  int64_t num_tag_slots_ = 0;  // allocated tag-array size
  std::atomic<int64_t> installed_{0};

  // --- kLru / kFrequencyEma: exact structures under one mutex.
  mutable std::mutex mutex_;
  std::list<uint64_t> lru_order_;  // MRU at front
  std::unordered_map<uint64_t, std::list<uint64_t>::iterator> lru_table_;
  std::unordered_map<uint64_t, double> freq_;  // decayed frequency per key
  std::unordered_map<uint64_t, bool> resident_;
  // Lazy min-heap of (frequency-at-push, key); stale entries are skipped or
  // re-pushed at their current frequency on pop.
  using HeapEntry = std::pair<double, uint64_t>;
  std::priority_queue<HeapEntry, std::vector<HeapEntry>, std::greater<HeapEntry>> weakest_;
  int64_t half_life_ = 0;
  int64_t accesses_since_decay_ = 0;
  int64_t insertions_ = 0;
  int64_t evictions_ = 0;

  // --- Byte-accounted backing (entry_bytes > 0).
  std::vector<device::Array<uint8_t>> pages_;  // empty handle = dropped page
  int64_t page_entries_ = 0;                   // entries per backing page
  int64_t live_pages_ = 0;
  device::CachingAllocator* allocator_ = nullptr;
  int64_t pressure_handler_id_ = 0;  // 0 = not registered
  std::atomic<int64_t> pressure_releases_{0};
};

}  // namespace gs::feature

#endif  // GSAMPLER_FEATURE_HOT_SET_CACHE_H_
