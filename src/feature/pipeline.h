// Sampling/gather overlap: a two-stage pipeline where feature gather for
// batch i runs concurrently with sampling of batch i+1.
//
// BGL's headline observation (PAPERS.md) is that feature I/O dominates the
// epoch, so hiding it behind sampling is the single biggest end-to-end
// lever after caching. This runner reuses pipeline::Executor — per-stage
// device streams, BoundedQueue credits, starved/backpressure stall
// attribution — so an overlapped epoch's simulated makespan is
// max(sampling, gather) per batch instead of their sum, while the gathered
// tensors stay bit-identical to the synchronous order (stages process items
// strictly in order; only the timeline differs).

#ifndef GSAMPLER_FEATURE_PIPELINE_H_
#define GSAMPLER_FEATURE_PIPELINE_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "feature/store.h"
#include "pipeline/metrics.h"
#include "tensor/tensor.h"

namespace gs::feature {

struct OverlapOptions {
  // Prefetch-queue depth between the sample and gather stages (0 = inline
  // synchronous reference mode).
  int depth = 2;
};

// One overlapped run's outcome: per-stage metrics from the underlying
// executor plus the gather-side cache observability.
struct OverlapReport {
  pipeline::Metrics metrics;
  GatherStats gather;
};

// Runs `num_batches` items through sample -> gather. `sample_fn(i)` executes
// on the sampling stage's stream and returns the node ids whose features
// batch i needs; the gather stage fetches them through `cache` (may be
// nullptr for the eager path) and hands the resulting tensor to
// `consume_fn(i, features)` on the gather stream. Both callbacks run on
// exactly one thread each, in item order.
OverlapReport RunSampleGatherPipeline(
    int64_t num_batches, const std::function<tensor::IdArray(int64_t)>& sample_fn,
    const FeatureStore& store, HotSetCache* cache,
    const std::function<void(int64_t, const tensor::Tensor&)>& consume_fn,
    const OverlapOptions& options = {});

}  // namespace gs::feature

#endif  // GSAMPLER_FEATURE_PIPELINE_H_
