// gs::feature::FeatureStore — per-node feature tensors served from "host"
// memory through the hot-set cache.
//
// Production GNN serving is dominated by feature I/O, not sampling (BGL,
// PAPERS.md): every sampled frontier needs its nodes' feature rows, and
// those rows live in host memory because real feature tables do not fit on
// the device. The store models that tier: features are a host-resident
// tensor, Gather() copies the requested rows exactly like the eager
// tensor::GatherRows (bit-identical output, asserted by the oracle), and
// the *cost* of the copy depends on the hot-set cache — rows resident on
// the device ride HBM, misses pay the host-DRAM read plus the PCIe
// transfer on the virtual clock.

#ifndef GSAMPLER_FEATURE_STORE_H_
#define GSAMPLER_FEATURE_STORE_H_

#include <cstdint>

#include "feature/hot_set_cache.h"
#include "tensor/tensor.h"

namespace gs::feature {

// Accumulated gather-side observability (per request, per stage, or per
// epoch — the caller owns the aggregation window).
struct GatherStats {
  int64_t rows = 0;            // feature rows gathered
  int64_t hits = 0;            // rows served from the device-side cache
  int64_t misses = 0;          // rows fetched from host memory
  int64_t gathered_bytes = 0;  // total feature bytes produced
  int64_t miss_bytes = 0;      // bytes that crossed host DRAM + PCIe
  int64_t gather_ns = 0;       // virtual time spent inside gather kernels

  void Add(const GatherStats& other) {
    rows += other.rows;
    hits += other.hits;
    misses += other.misses;
    gathered_bytes += other.gathered_bytes;
    miss_bytes += other.miss_bytes;
    gather_ns += other.gather_ns;
  }

  double HitRate() const {
    return rows > 0 ? static_cast<double>(hits) / static_cast<double>(rows) : 0.0;
  }
};

class FeatureStore {
 public:
  // Wraps a feature tensor (shape [num_nodes, dim] or [num_nodes]; shares
  // storage). Host-resident tensors model the UVA feature table; a
  // device-resident tensor is legal and gathers at device rates.
  explicit FeatureStore(tensor::Tensor features);

  int64_t num_nodes() const { return features_.rows(); }
  int64_t feature_dim() const { return features_.dim() == 2 ? features_.cols() : 1; }
  int64_t row_bytes() const {
    return feature_dim() * static_cast<int64_t>(sizeof(float));
  }
  const tensor::Tensor& features() const { return features_; }

  // Gathers the feature rows for `ids` into a fresh device tensor. The
  // produced data is bit-identical to tensor::GatherRows(features(), ids) —
  // the cache changes only what the virtual clock charges: rows the cache
  // reports resident cost HBM reads; misses additionally cost
  // host_read_ns_per_byte + pcie_ns_per_byte per byte (when the store is
  // host-resident). With cache == nullptr every row is a miss (the eager
  // path). Under fault injection the cache access may throw
  // fault::TransientError (transfer.error). Thread-safe for concurrent
  // callers sharing one cache.
  tensor::Tensor Gather(const tensor::IdArray& ids, HotSetCache* cache = nullptr,
                        GatherStats* stats = nullptr) const;

 private:
  tensor::Tensor features_;
};

}  // namespace gs::feature

#endif  // GSAMPLER_FEATURE_STORE_H_
