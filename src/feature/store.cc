#include "feature/store.h"

#include <algorithm>

#include "common/error.h"
#include "device/device.h"
#include "device/stream.h"

namespace gs::feature {

FeatureStore::FeatureStore(tensor::Tensor features) : features_(std::move(features)) {
  GS_CHECK(features_.defined()) << "FeatureStore needs a defined feature tensor";
  GS_CHECK(features_.dim() == 1 || features_.dim() == 2);
}

tensor::Tensor FeatureStore::Gather(const tensor::IdArray& ids, HotSetCache* cache,
                                    GatherStats* stats) const {
  const tensor::Tensor& a = features_;
  const int64_t d = a.dim() == 2 ? a.cols() : 1;
  const int64_t n = ids.size();
  const int64_t per_row = d * static_cast<int64_t>(sizeof(float));
  device::Stream& stream = device::Current().stream();
  const int64_t start_ns = stream.now_ns();
  device::KernelScope kernel(stream);
  tensor::Tensor out =
      a.dim() == 2 ? tensor::Tensor::Empty({n, d}) : tensor::Tensor::Empty({n});
  // The copy below is byte-for-byte the eager tensor::GatherRows loop — the
  // cache only decides what the virtual clock charges, never what lands in
  // `out`. That is the invariant the gs::oracle feature differential pins.
  int64_t miss_bytes = 0;
  int64_t hit_rows = 0;
  const bool host_resident = a.array().space() == device::MemorySpace::kHost;
  for (int64_t i = 0; i < n; ++i) {
    const int64_t r = ids[i];
    GS_CHECK(r >= 0 && r < a.rows())
        << "feature gather index " << r << " out of range " << a.rows();
    if (cache != nullptr) {
      const int64_t charged = cache->Access(static_cast<uint64_t>(r), per_row);
      if (charged == 0) {
        ++hit_rows;
      } else {
        miss_bytes += charged;
      }
    } else {
      miss_bytes += per_row;
    }
    std::copy_n(a.data() + r * d, d, out.data() + i * d);
  }
  // Hits are device-resident rows: the gather reads them (and writes the
  // output) through HBM. Misses additionally pay the host-DRAM read and the
  // PCIe hop when the store is host-resident.
  kernel.Finish({.dense = true,
                 .parallel_items = n,
                 .hbm_bytes = 2 * n * per_row,
                 .pcie_bytes = host_resident ? miss_bytes : 0,
                 .host_bytes = host_resident ? miss_bytes : 0});
  if (stats != nullptr) {
    stats->rows += n;
    stats->hits += hit_rows;
    stats->misses += n - hit_rows;
    stats->gathered_bytes += n * per_row;
    stats->miss_bytes += miss_bytes;
    stats->gather_ns += stream.now_ns() - start_ns;
  }
  return out;
}

}  // namespace gs::feature
