// Fused edge-map / edge-map-reduce kernels (Section 4.2 of the paper).
//
// The fusion passes collapse chains of edge-map operators (broadcast,
// scalar elementwise, pattern-aligned elementwise, dense elementwise, SDDMM
// dot) into a single pass over the edges described by a stage list. The
// fused kernels never write intermediate edge values to memory:
// FusedEdgeMap writes only the final values; FusedEdgeMapReduce writes only
// the reduced vector.

#ifndef GSAMPLER_SPARSE_FUSED_H_
#define GSAMPLER_SPARSE_FUSED_H_

#include <vector>

#include "common/binary_op.h"
#include "sparse/matrix.h"
#include "tensor/tensor.h"

namespace gs::sparse {

// One step of an edge-value computation: value = op(value, operand) where
// the operand is resolved per edge according to `kind`.
struct EdgeMapStage {
  enum class OperandKind {
    kScalar,      // attrs.scalar
    kRowVector,   // operand tensor indexed by the edge's row
    kColVector,   // operand tensor indexed by the edge's column
    kDense,       // operand tensor (num_rows x num_cols) at (row, col)
    kEdgeTensor,  // operand tensor aligned with the matrix's CSC edge order
    kDot,         // dot(u[row], v[col]) — the SDDMM stage (uses operand/operand2)
  };

  BinaryOp op = BinaryOp::kMul;
  OperandKind kind = OperandKind::kScalar;
  float scalar = 0.0f;
  // Indices into the `operands` span passed to the kernel; -1 when unused.
  int operand = -1;
  int operand2 = -1;  // kDot only (v factor)
};

// Applies the stage pipeline to every edge of m, returning a matrix that
// shares m's structure with the final values (CSC-aligned).
Matrix FusedEdgeMap(const Matrix& m, const std::vector<EdgeMapStage>& stages,
                    std::span<const tensor::Tensor> operands);

// Applies the stage pipeline and immediately reduces the per-edge results
// onto rows (axis=0) or columns (axis=1) without materializing them.
ValueArray FusedEdgeMapReduce(const Matrix& m, const std::vector<EdgeMapStage>& stages,
                              std::span<const tensor::Tensor> operands, int axis);

}  // namespace gs::sparse

#endif  // GSAMPLER_SPARSE_FUSED_H_
