// Select-step kernels: node-wise (individual) and layer-wise (collective)
// sampling, the fused extract+sample kernel, and random-walk steps.

#include <algorithm>
#include <vector>

#include "common/sampling.h"
#include "sparse/kernels.h"
#include "sparse/kernels_internal.h"

namespace gs::sparse {

using internal::CurrentStream;
using internal::PickFormat;

Matrix IndividualSample(const Matrix& m, int64_t k, const ValueArray& probs, Rng& rng) {
  GS_CHECK_GT(k, 0) << "fanout must be positive";
  if (probs.defined()) {
    GS_CHECK_EQ(probs.size(), m.nnz()) << "probs must align with the matrix's CSC edge order";
  }
  const Compressed& csc = m.Csc();
  const bool weighted = csc.values.defined();
  device::KernelScope kernel(CurrentStream());

  const int64_t t = m.num_cols();
  Compressed out;
  out.indptr = OffsetArray::Empty(t + 1);
  out.indptr[0] = 0;
  std::vector<int32_t> picked;  // per-column scratch of selected slots
  std::vector<int32_t> indices;
  std::vector<float> values;
  indices.reserve(static_cast<size_t>(std::min(m.nnz(), k * t)));
  int64_t pcie = 0;

  for (int64_t c = 0; c < t; ++c) {
    const int64_t begin = csc.indptr[c];
    const int64_t deg = csc.indptr[c + 1] - begin;
    picked.clear();
    if (probs.defined()) {
      SampleWeightedWithoutReplacement(
          std::span<const float>(probs.data() + begin, static_cast<size_t>(deg)), k, rng,
          picked);
    } else {
      SampleUniformWithoutReplacement(deg, k, rng, picked);
    }
    // Canonical output order: emit by ascending slot so the result's edge
    // order is a pure function of the selected set, not of the selection
    // algorithm's internal ordering.
    std::sort(picked.begin(), picked.end());
    for (int32_t slot : picked) {
      indices.push_back(csc.indices[begin + slot]);
      if (weighted) {
        values.push_back(csc.values[begin + slot]);
      }
    }
    out.indptr[c + 1] = static_cast<int64_t>(indices.size());
    if (m.IsUva()) {
      // Selection needs the full candidate list (degrees + weights).
      pcie += internal::UvaCharge(m, static_cast<uint64_t>(m.GlobalColId(static_cast<int32_t>(c))),
                                  deg * int64_t{4});
    }
  }

  const int64_t out_nnz = static_cast<int64_t>(indices.size());
  out.indices = IdArray::FromVector(indices);
  if (weighted) {
    out.values = ValueArray::FromVector(values);
  }
  Matrix result = Matrix::FromCsc(m.num_rows(), t, std::move(out));
  internal::InheritRowSpace(m, result);
  result.SetColIds(m.col_ids());
  kernel.Finish({.parallel_items = std::max<int64_t>(m.nnz(), 1),
                 .hbm_bytes = m.nnz() * int64_t{4} + out_nnz * int64_t{8},
                 .pcie_bytes = pcie});
  return result;
}

Matrix CollectiveSample(const Matrix& m, int64_t k, const ValueArray& row_probs, Rng& rng) {
  GS_CHECK_GT(k, 0);
  const internal::RowOperand row_op(m, row_probs.size());
  const Format format = PickFormat(m, {Format::kCsr, Format::kCoo, Format::kCsc});
  device::KernelScope kernel(CurrentStream());

  std::vector<int32_t> selected;
  if (row_op.local()) {
    SampleWeightedWithoutReplacement(row_probs.span(), k, rng, selected);
  } else {
    // Global-space probabilities: gather into the local row space first.
    std::vector<float> local(static_cast<size_t>(m.num_rows()));
    for (int64_t r = 0; r < m.num_rows(); ++r) {
      local[static_cast<size_t>(r)] = row_probs[row_op.Index(static_cast<int32_t>(r))];
    }
    SampleWeightedWithoutReplacement(local, k, rng, selected);
  }
  std::sort(selected.begin(), selected.end());
  const int64_t s = static_cast<int64_t>(selected.size());

  IdArray row_ids = IdArray::Empty(s);
  for (int64_t i = 0; i < s; ++i) {
    row_ids[i] = m.GlobalRowId(selected[static_cast<size_t>(i)]);
  }

  Matrix result;
  int64_t hbm = 0;

  switch (format) {
    case Format::kCsr: {
      // Fast path: gather only the selected rows.
      const Compressed& csr = m.Csr();
      const bool weighted = csr.values.defined();
      Compressed out;
      out.indptr = OffsetArray::Empty(s + 1);
      out.indptr[0] = 0;
      for (int64_t i = 0; i < s; ++i) {
        const int32_t r = selected[static_cast<size_t>(i)];
        out.indptr[i + 1] = out.indptr[i] + (csr.indptr[r + 1] - csr.indptr[r]);
      }
      const int64_t out_nnz = out.indptr[s];
      out.indices = IdArray::Empty(out_nnz);
      if (weighted) {
        out.values = ValueArray::Empty(out_nnz);
      }
      for (int64_t i = 0; i < s; ++i) {
        const int32_t r = selected[static_cast<size_t>(i)];
        const int64_t begin = csr.indptr[r];
        const int64_t len = csr.indptr[r + 1] - begin;
        std::copy_n(csr.indices.data() + begin, len, out.indices.data() + out.indptr[i]);
        if (weighted) {
          std::copy_n(csr.values.data() + begin, len, out.values.data() + out.indptr[i]);
        }
      }
      hbm = 2 * out_nnz * int64_t{8} + m.num_rows() * int64_t{4};
      result = Matrix::FromCsr(s, m.num_cols(), std::move(out));
      break;
    }
    case Format::kCoo: {
      // Scan path over the edge list.
      const Coo& coo = m.GetCoo();
      const bool weighted = coo.values.defined();
      std::vector<int32_t> row_map(static_cast<size_t>(m.num_rows()), -1);
      for (int64_t i = 0; i < s; ++i) {
        row_map[static_cast<size_t>(selected[static_cast<size_t>(i)])] =
            static_cast<int32_t>(i);
      }
      std::vector<int32_t> rows_kept;
      std::vector<int32_t> cols_kept;
      std::vector<float> vals_kept;
      for (int64_t e = 0; e < m.nnz(); ++e) {
        const int32_t mapped = row_map[static_cast<size_t>(coo.row[e])];
        if (mapped >= 0) {
          rows_kept.push_back(mapped);
          cols_kept.push_back(coo.col[e]);
          if (weighted) {
            vals_kept.push_back(coo.values[e]);
          }
        }
      }
      Coo out;
      out.row = IdArray::FromVector(rows_kept);
      out.col = IdArray::FromVector(cols_kept);
      if (weighted) {
        out.values = ValueArray::FromVector(vals_kept);
      }
      hbm = m.nnz() * int64_t{8};
      result = Matrix::FromCoo(s, m.num_cols(), std::move(out));
      break;
    }
    case Format::kCsc: {
      // Slowest path: per-column scans with row filtering (preserves CSC).
      const Compressed& csc = m.Csc();
      const bool weighted = csc.values.defined();
      std::vector<int32_t> row_map(static_cast<size_t>(m.num_rows()), -1);
      for (int64_t i = 0; i < s; ++i) {
        row_map[static_cast<size_t>(selected[static_cast<size_t>(i)])] =
            static_cast<int32_t>(i);
      }
      Compressed out;
      out.indptr = OffsetArray::Empty(m.num_cols() + 1);
      out.indptr[0] = 0;
      std::vector<int32_t> idx;
      std::vector<float> vals;
      for (int64_t c = 0; c < m.num_cols(); ++c) {
        for (int64_t e = csc.indptr[c]; e < csc.indptr[c + 1]; ++e) {
          const int32_t mapped = row_map[static_cast<size_t>(csc.indices[e])];
          if (mapped >= 0) {
            idx.push_back(mapped);
            if (weighted) {
              vals.push_back(csc.values[e]);
            }
          }
        }
        out.indptr[c + 1] = static_cast<int64_t>(idx.size());
      }
      out.indices = IdArray::FromVector(idx);
      if (weighted) {
        out.values = ValueArray::FromVector(vals);
      }
      hbm = m.nnz() * int64_t{12};
      result = Matrix::FromCsc(s, m.num_cols(), std::move(out));
      break;
    }
  }

  result.SetRowIds(std::move(row_ids));
  result.SetRowsCompact(true);
  result.SetColIds(m.col_ids());
  kernel.Finish({.parallel_items = m.nnz(),
                 .hbm_bytes = hbm,
                 .pcie_bytes = m.IsUva() ? m.nnz() * int64_t{8} : 0});
  return result;
}

Matrix FusedSliceSample(const Matrix& m, const IdArray& cols, int64_t k, Rng& rng) {
  GS_CHECK_GT(k, 0);
  const Compressed& csc = m.Csc();
  const bool weighted = csc.values.defined();
  device::KernelScope kernel(CurrentStream());
  internal::ColLocalizer localizer(m);

  const int64_t t = cols.size();
  Compressed out;
  out.indptr = OffsetArray::Empty(t + 1);
  out.indptr[0] = 0;
  std::vector<int32_t> picked;
  std::vector<int32_t> indices;
  std::vector<float> values;
  indices.reserve(static_cast<size_t>(k * t));
  int64_t pcie = 0;

  for (int64_t i = 0; i < t; ++i) {
    const int32_t c = localizer.ToLocal(cols[i]);
    const int64_t begin = csc.indptr[c];
    const int64_t deg = csc.indptr[c + 1] - begin;
    picked.clear();
    SampleUniformWithoutReplacement(deg, k, rng, picked);
    std::sort(picked.begin(), picked.end());  // canonical output order
    for (int32_t slot : picked) {
      indices.push_back(csc.indices[begin + slot]);
      if (weighted) {
        values.push_back(csc.values[begin + slot]);
      }
    }
    out.indptr[i + 1] = static_cast<int64_t>(indices.size());
    if (m.IsUva()) {
      // Uniform selection touches only the chosen slots, not the whole
      // adjacency list — one of the wins of Extract-Select fusion on UVA.
      pcie += internal::UvaCharge(m, static_cast<uint64_t>(cols[i]),
                                  static_cast<int64_t>(picked.size()) * 4);
    }
  }

  const int64_t out_nnz = static_cast<int64_t>(indices.size());
  out.indices = IdArray::FromVector(indices);
  if (weighted) {
    out.values = ValueArray::FromVector(values);
  }
  Matrix result = Matrix::FromCsc(m.num_rows(), t, std::move(out));
  internal::InheritRowSpace(m, result);
  result.SetColIds(cols.Clone());
  kernel.Finish({.parallel_items = std::max<int64_t>(out_nnz, 1),
                 .hbm_bytes = out_nnz * int64_t{8},
                 .pcie_bytes = pcie});
  return result;
}

IdArray UniformWalkStep(const Matrix& m, const IdArray& cur, Rng& rng) {
  const Compressed& csc = m.Csc();
  device::KernelScope kernel(CurrentStream());
  IdArray out = IdArray::Empty(cur.size());
  int64_t pcie = 0;
  for (int64_t i = 0; i < cur.size(); ++i) {
    const int32_t c = cur[i];
    if (c < 0) {
      out[i] = -1;
      continue;
    }
    GS_CHECK_LT(c, m.num_cols());
    const int64_t begin = csc.indptr[c];
    const int64_t deg = csc.indptr[c + 1] - begin;
    if (deg == 0) {
      out[i] = -1;
      continue;
    }
    out[i] = csc.indices[begin + static_cast<int64_t>(rng.UniformInt(static_cast<uint64_t>(deg)))];
    if (m.IsUva()) {
      pcie += internal::UvaCharge(m, static_cast<uint64_t>(c), 4);
    }
  }
  kernel.Finish({.parallel_items = cur.size(),
                 .hbm_bytes = cur.size() * int64_t{12},
                 .pcie_bytes = pcie});
  return out;
}

IdArray UniformWalkStepRestart(const Matrix& m, const IdArray& cur, const IdArray& root,
                               float restart_prob, Rng& rng) {
  GS_CHECK_EQ(cur.size(), root.size());
  GS_CHECK(restart_prob >= 0.0f && restart_prob <= 1.0f);
  const Compressed& csc = m.Csc();
  device::KernelScope kernel(CurrentStream());
  IdArray out = IdArray::Empty(cur.size());
  int64_t pcie = 0;
  for (int64_t i = 0; i < cur.size(); ++i) {
    const int32_t c = cur[i];
    if (c < 0 || rng.UniformF() < restart_prob) {
      out[i] = root[i];
      continue;
    }
    GS_CHECK_LT(c, m.num_cols());
    const int64_t begin = csc.indptr[c];
    const int64_t deg = csc.indptr[c + 1] - begin;
    if (deg == 0) {
      out[i] = root[i];  // dead end: restart
      continue;
    }
    out[i] = csc.indices[begin + static_cast<int64_t>(rng.UniformInt(static_cast<uint64_t>(deg)))];
    if (m.IsUva()) {
      pcie += internal::UvaCharge(m, static_cast<uint64_t>(c), 4);
    }
  }
  kernel.Finish({.parallel_items = cur.size(),
                 .hbm_bytes = cur.size() * int64_t{16},
                 .pcie_bytes = pcie});
  return out;
}

Matrix TopKVisited(std::span<const IdArray> steps, const IdArray& roots, int64_t k,
                   int64_t num_rows) {
  GS_CHECK_GT(k, 0);
  device::KernelScope kernel(CurrentStream());
  const int64_t t = roots.size();
  for (const IdArray& step : steps) {
    GS_CHECK_EQ(step.size(), t) << "walk traces must align with roots";
  }

  Compressed out;
  out.indptr = OffsetArray::Empty(t + 1);
  out.indptr[0] = 0;
  std::vector<int32_t> indices;
  std::vector<float> counts;
  std::vector<std::pair<int32_t, int32_t>> visits;  // (node, count) scratch
  for (int64_t i = 0; i < t; ++i) {
    visits.clear();
    for (const IdArray& step : steps) {
      const int32_t v = step[i];
      if (v < 0 || v == roots[i]) {
        continue;
      }
      visits.emplace_back(v, 1);
    }
    std::sort(visits.begin(), visits.end());
    // Merge duplicates into counts, then keep the k most visited.
    std::vector<std::pair<int32_t, int32_t>> merged;  // (count, node)
    for (size_t j = 0; j < visits.size();) {
      size_t end = j;
      while (end < visits.size() && visits[end].first == visits[j].first) {
        ++end;
      }
      merged.emplace_back(static_cast<int32_t>(end - j), visits[j].first);
      j = end;
    }
    std::sort(merged.begin(), merged.end(), std::greater<>());
    const size_t take = std::min<size_t>(static_cast<size_t>(k), merged.size());
    for (size_t j = 0; j < take; ++j) {
      indices.push_back(merged[j].second);
      counts.push_back(static_cast<float>(merged[j].first));
    }
    out.indptr[i + 1] = static_cast<int64_t>(indices.size());
  }
  out.indices = IdArray::FromVector(indices);
  out.values = ValueArray::FromVector(counts);
  const int64_t out_nnz = static_cast<int64_t>(indices.size());
  Matrix result = Matrix::FromCsc(num_rows, t, std::move(out));
  result.SetColIds(roots.Clone());
  kernel.Finish({.parallel_items = t,
                 .hbm_bytes = static_cast<int64_t>(steps.size()) * t * 4 + out_nnz * 8});
  return result;
}

IdArray Node2VecStep(const Matrix& m, const IdArray& cur, const IdArray& prev, float p,
                     float q, Rng& rng) {
  GS_CHECK_EQ(cur.size(), prev.size());
  GS_CHECK_GT(p, 0.0f);
  GS_CHECK_GT(q, 0.0f);
  const Compressed& csc = m.Csc();
  device::KernelScope kernel(CurrentStream());

  // Membership test: is `node` an in-neighbor of `anchor`? Requires sorted
  // per-column indices (guaranteed by the graph builders).
  auto is_neighbor = [&](int32_t anchor, int32_t node) {
    const int64_t begin = csc.indptr[anchor];
    const int64_t end = csc.indptr[anchor + 1];
    return std::binary_search(csc.indices.data() + begin, csc.indices.data() + end, node);
  };

  IdArray out = IdArray::Empty(cur.size());
  std::vector<float> bias;
  int64_t edges_scored = 0;
  int64_t pcie = 0;
  for (int64_t i = 0; i < cur.size(); ++i) {
    const int32_t c = cur[i];
    if (c < 0) {
      out[i] = -1;
      continue;
    }
    const int64_t begin = csc.indptr[c];
    const int64_t deg = csc.indptr[c + 1] - begin;
    if (deg == 0) {
      out[i] = -1;
      continue;
    }
    if (prev[i] < 0) {
      out[i] =
          csc.indices[begin + static_cast<int64_t>(rng.UniformInt(static_cast<uint64_t>(deg)))];
    } else {
      bias.clear();
      for (int64_t e = begin; e < begin + deg; ++e) {
        const int32_t r = csc.indices[e];
        float b;
        if (r == prev[i]) {
          b = 1.0f / p;
        } else if (is_neighbor(prev[i], r)) {
          b = 1.0f;
        } else {
          b = 1.0f / q;
        }
        bias.push_back(b);
      }
      const int32_t slot = SampleWeightedOne(bias, rng);
      out[i] = slot >= 0 ? csc.indices[begin + slot] : -1;
      edges_scored += deg;
    }
    if (m.IsUva()) {
      pcie += internal::UvaCharge(m, static_cast<uint64_t>(c), deg * int64_t{4});
    }
  }
  kernel.Finish({.parallel_items = cur.size(),
                 .hbm_bytes = edges_scored * int64_t{8} + cur.size() * int64_t{8},
                 .pcie_bytes = pcie});
  return out;
}

}  // namespace gs::sparse
