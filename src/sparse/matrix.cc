#include "sparse/matrix.h"

#include <algorithm>
#include <sstream>
#include <utility>
#include <vector>

#include "common/error.h"
#include "device/device.h"
#include "device/stream.h"

namespace gs::sparse {
namespace {

device::Stream& CurrentStream() { return device::Current().stream(); }

template <typename T>
int64_t PcieBytesIfHost(const device::Array<T>& a) {
  return a.defined() && a.space() == device::MemorySpace::kHost ? a.bytes() : 0;
}

// Expands a compressed indptr into one id per edge (the uncompressed axis).
IdArray ExpandIndptr(const OffsetArray& indptr, int64_t nnz) {
  IdArray out = IdArray::Empty(nnz);
  const int64_t n = indptr.size() - 1;
  for (int64_t i = 0; i < n; ++i) {
    for (int64_t e = indptr[i]; e < indptr[i + 1]; ++e) {
      out[e] = static_cast<int32_t>(i);
    }
  }
  return out;
}

// Stable counting sort of COO edges by `keys` (values in [0, num_keys)),
// producing compressed storage. `minor` supplies the per-edge index stored
// in Compressed::indices.
Compressed CompressBy(const IdArray& keys, const IdArray& minor, const ValueArray& values,
                      int64_t num_keys) {
  const int64_t nnz = keys.size();
  Compressed out;
  out.indptr = OffsetArray::Full(num_keys + 1, 0);
  for (int64_t e = 0; e < nnz; ++e) {
    GS_CHECK(keys[e] >= 0 && keys[e] < num_keys)
        << "edge endpoint " << keys[e] << " out of range " << num_keys;
    ++out.indptr[keys[e] + 1];
  }
  for (int64_t i = 0; i < num_keys; ++i) {
    out.indptr[i + 1] += out.indptr[i];
  }
  out.indices = IdArray::Empty(nnz);
  if (values.defined()) {
    out.values = ValueArray::Empty(nnz);
  }
  OffsetArray cursor = out.indptr.Clone();
  for (int64_t e = 0; e < nnz; ++e) {
    const int64_t slot = cursor[keys[e]]++;
    out.indices[slot] = minor[e];
    if (values.defined()) {
      out.values[slot] = values[e];
    }
  }
  // Canonical edge order: sort each bucket by the minor coordinate (values
  // break ties between parallel edges). Compressed forms must not depend on
  // the source format's edge order, or a layout-planned conversion would
  // change which edge a given RNG draw lands on in the select kernels.
  std::vector<std::pair<int32_t, float>> bucket;
  for (int64_t i = 0; i < num_keys; ++i) {
    const int64_t begin = out.indptr[i];
    const int64_t end = out.indptr[i + 1];
    if (end - begin < 2) {
      continue;
    }
    bucket.clear();
    for (int64_t e = begin; e < end; ++e) {
      bucket.emplace_back(out.indices[e], values.defined() ? out.values[e] : 0.0f);
    }
    std::sort(bucket.begin(), bucket.end());
    for (int64_t e = begin; e < end; ++e) {
      out.indices[e] = bucket[static_cast<size_t>(e - begin)].first;
      if (values.defined()) {
        out.values[e] = bucket[static_cast<size_t>(e - begin)].second;
      }
    }
  }
  return out;
}

}  // namespace

const char* FormatName(Format format) {
  switch (format) {
    case Format::kCsc:
      return "CSC";
    case Format::kCsr:
      return "CSR";
    case Format::kCoo:
      return "COO";
  }
  return "?";
}

Matrix Matrix::FromCsc(int64_t num_rows, int64_t num_cols, Compressed csc) {
  GS_CHECK_EQ(csc.indptr.size(), num_cols + 1);
  Matrix m;
  m.impl_ = std::make_shared<Impl>();
  m.impl_->num_rows = num_rows;
  m.impl_->num_cols = num_cols;
  m.impl_->nnz = csc.indices.size();
  m.impl_->csc = std::move(csc);
  return m;
}

Matrix Matrix::FromCsr(int64_t num_rows, int64_t num_cols, Compressed csr) {
  GS_CHECK_EQ(csr.indptr.size(), num_rows + 1);
  Matrix m;
  m.impl_ = std::make_shared<Impl>();
  m.impl_->num_rows = num_rows;
  m.impl_->num_cols = num_cols;
  m.impl_->nnz = csr.indices.size();
  m.impl_->csr = std::move(csr);
  return m;
}

Matrix Matrix::FromCoo(int64_t num_rows, int64_t num_cols, Coo coo) {
  GS_CHECK_EQ(coo.row.size(), coo.col.size());
  Matrix m;
  m.impl_ = std::make_shared<Impl>();
  m.impl_->num_rows = num_rows;
  m.impl_->num_cols = num_cols;
  m.impl_->nnz = coo.row.size();
  m.impl_->coo = std::move(coo);
  return m;
}

bool Matrix::HasFormat(Format format) const {
  switch (format) {
    case Format::kCsc:
      return impl_->csc.has_value();
    case Format::kCsr:
      return impl_->csr.has_value();
    case Format::kCoo:
      return impl_->coo.has_value();
  }
  return false;
}

const Coo& Matrix::GetCoo() const {
  if (!impl_->coo.has_value()) {
    device::KernelScope kernel(CurrentStream());
    Coo coo;
    int64_t pcie = 0;
    if (impl_->csc.has_value()) {
      // COO in CSC edge order: the row array aliases csc.indices.
      coo.row = impl_->csc->indices;
      coo.col = ExpandIndptr(impl_->csc->indptr, impl_->nnz);
      coo.values = impl_->csc->values;
      pcie = PcieBytesIfHost(impl_->csc->indptr) + PcieBytesIfHost(impl_->csc->indices);
    } else {
      GS_CHECK(impl_->csr.has_value()) << "matrix has no format";
      coo.col = impl_->csr->indices;
      coo.row = ExpandIndptr(impl_->csr->indptr, impl_->nnz);
      coo.values = impl_->csr->values;
      pcie = PcieBytesIfHost(impl_->csr->indptr) + PcieBytesIfHost(impl_->csr->indices);
    }
    impl_->coo = std::move(coo);
    kernel.Finish({.parallel_items = impl_->nnz,
                   .hbm_bytes = impl_->nnz * int64_t{8},
                   .pcie_bytes = pcie});
  }
  return *impl_->coo;
}

const Compressed& Matrix::Csc() const {
  if (!impl_->csc.has_value()) {
    const Coo& coo = GetCoo();  // may itself convert from CSR
    device::KernelScope kernel(CurrentStream());
    impl_->csc = CompressBy(coo.col, coo.row, coo.values, impl_->num_cols);
    kernel.Finish({.parallel_items = impl_->nnz,
                   .hbm_bytes = impl_->nnz * int64_t{16} + impl_->num_cols * int64_t{8},
                   .pcie_bytes = PcieBytesIfHost(coo.row) + PcieBytesIfHost(coo.col)});
  }
  return *impl_->csc;
}

const Compressed& Matrix::Csr() const {
  if (!impl_->csr.has_value()) {
    const Coo& coo = GetCoo();
    device::KernelScope kernel(CurrentStream());
    impl_->csr = CompressBy(coo.row, coo.col, coo.values, impl_->num_rows);
    kernel.Finish({.parallel_items = impl_->nnz,
                   .hbm_bytes = impl_->nnz * int64_t{16} + impl_->num_rows * int64_t{8},
                   .pcie_bytes = PcieBytesIfHost(coo.row) + PcieBytesIfHost(coo.col)});
  }
  return *impl_->csr;
}

bool Matrix::HasValues() const {
  return (impl_->csc.has_value() && impl_->csc->values.defined()) ||
         (impl_->csr.has_value() && impl_->csr->values.defined()) ||
         (impl_->coo.has_value() && impl_->coo->values.defined());
}

ValueArray Matrix::ValuesFor(Format format) const {
  ValueArray values;
  switch (format) {
    case Format::kCsc:
      values = Csc().values;
      break;
    case Format::kCsr:
      values = Csr().values;
      break;
    case Format::kCoo:
      values = GetCoo().values;
      break;
  }
  if (!values.defined()) {
    // Unweighted matrix: materialize unit weights.
    values = ValueArray::Full(impl_->nnz, 1.0f);
  }
  return values;
}

Matrix Matrix::WithValues(Format format, ValueArray values) const {
  GS_CHECK_EQ(values.size(), impl_->nnz);
  Matrix m;
  m.impl_ = std::make_shared<Impl>();
  m.impl_->num_rows = impl_->num_rows;
  m.impl_->num_cols = impl_->num_cols;
  m.impl_->nnz = impl_->nnz;
  m.impl_->row_ids = impl_->row_ids;
  m.impl_->col_ids = impl_->col_ids;
  m.impl_->rows_compact = impl_->rows_compact;
  m.impl_->uva_cache = impl_->uva_cache;
  switch (format) {
    case Format::kCsc: {
      const Compressed& csc = Csc();
      m.impl_->csc = Compressed{csc.indptr, csc.indices, std::move(values)};
      break;
    }
    case Format::kCsr: {
      const Compressed& csr = Csr();
      m.impl_->csr = Compressed{csr.indptr, csr.indices, std::move(values)};
      break;
    }
    case Format::kCoo: {
      const Coo& coo = GetCoo();
      m.impl_->coo = Coo{coo.row, coo.col, std::move(values)};
      break;
    }
  }
  return m;
}

bool Matrix::SharesPatternWith(const Matrix& other) const {
  if (impl_ == other.impl_) {
    return true;
  }
  if (impl_->nnz != other.impl_->nnz || impl_->num_rows != other.impl_->num_rows ||
      impl_->num_cols != other.impl_->num_cols) {
    return false;
  }
  // Fast path: structural sharing of index arrays.
  if (impl_->csc.has_value() && other.impl_->csc.has_value() &&
      impl_->csc->indices.data() == other.impl_->csc->indices.data()) {
    return true;
  }
  if (impl_->csr.has_value() && other.impl_->csr.has_value() &&
      impl_->csr->indices.data() == other.impl_->csr->indices.data()) {
    return true;
  }
  if (impl_->coo.has_value() && other.impl_->coo.has_value() &&
      impl_->coo->row.data() == other.impl_->coo->row.data() &&
      impl_->coo->col.data() == other.impl_->coo->col.data()) {
    return true;
  }
  // Slow path: pattern-equal matrices built independently (e.g. slices of a
  // base matrix and of its hoisted, pre-computed transform) compare equal by
  // content in CSC order.
  const Compressed& a = Csc();
  const Compressed& b = other.Csc();
  for (int64_t i = 0; i < a.indptr.size(); ++i) {
    if (a.indptr[i] != b.indptr[i]) {
      return false;
    }
  }
  for (int64_t e = 0; e < impl_->nnz; ++e) {
    if (a.indices[e] != b.indices[e]) {
      return false;
    }
  }
  return true;
}

void Matrix::SetRowIds(IdArray ids) {
  if (ids.defined()) {
    GS_CHECK_EQ(ids.size(), impl_->num_rows);
  }
  impl_->row_ids = std::move(ids);
}

void Matrix::SetColIds(IdArray ids) {
  if (ids.defined()) {
    GS_CHECK_EQ(ids.size(), impl_->num_cols);
  }
  impl_->col_ids = std::move(ids);
}

std::string Matrix::DebugString() const {
  std::ostringstream out;
  out << "Matrix(" << num_rows() << "x" << num_cols() << ", nnz=" << nnz() << ", formats=[";
  bool first = true;
  for (Format f : {Format::kCsc, Format::kCsr, Format::kCoo}) {
    if (HasFormat(f)) {
      if (!first) {
        out << ",";
      }
      out << FormatName(f);
      first = false;
    }
  }
  out << "]" << (HasValues() ? ", weighted" : "") << (rows_compact() ? ", rows-compact" : "")
      << ")";
  return out.str();
}

}  // namespace gs::sparse
