#include "sparse/fused.h"

#include "common/error.h"
#include "sparse/kernels_internal.h"

namespace gs::sparse {

using internal::CurrentStream;

namespace {

// Pre-resolved per-stage row addressing: row-aligned operands may be local
// (length num_rows) or global (indexed through row_ids); see
// kernels_internal.h::RowOperand.
struct StagePlan {
  std::vector<internal::RowOperand> row_ops;  // one per stage (dummy for col/edge)
};

// Validates operand shapes once and resolves row addressing.
StagePlan CheckStages(const Matrix& m, const std::vector<EdgeMapStage>& stages,
                      std::span<const tensor::Tensor> operands) {
  StagePlan plan;
  for (const EdgeMapStage& stage : stages) {
    auto operand_of = [&](int index) -> const tensor::Tensor& {
      GS_CHECK(index >= 0 && index < static_cast<int>(operands.size()))
          << "stage operand index " << index << " out of range";
      return operands[static_cast<size_t>(index)];
    };
    internal::RowOperand row_op(m, m.num_rows());
    switch (stage.kind) {
      case EdgeMapStage::OperandKind::kScalar:
        break;
      case EdgeMapStage::OperandKind::kRowVector:
        row_op = internal::RowOperand(m, operand_of(stage.operand).numel());
        break;
      case EdgeMapStage::OperandKind::kColVector:
        GS_CHECK_EQ(operand_of(stage.operand).numel(), m.num_cols());
        break;
      case EdgeMapStage::OperandKind::kDense: {
        const tensor::Tensor& d = operand_of(stage.operand);
        row_op = internal::RowOperand(m, d.rows());
        GS_CHECK_EQ(d.cols(), m.num_cols());
        break;
      }
      case EdgeMapStage::OperandKind::kEdgeTensor:
        GS_CHECK_EQ(operand_of(stage.operand).numel(), m.nnz());
        break;
      case EdgeMapStage::OperandKind::kDot: {
        const tensor::Tensor& u = operand_of(stage.operand);
        const tensor::Tensor& v = operand_of(stage.operand2);
        row_op = internal::RowOperand(m, u.rows());
        GS_CHECK_EQ(v.rows(), m.num_cols());
        GS_CHECK_EQ(u.cols(), v.cols());
        break;
      }
    }
    plan.row_ops.push_back(row_op);
  }
  return plan;
}

float ApplyStages(const std::vector<EdgeMapStage>& stages, const StagePlan& plan,
                  std::span<const tensor::Tensor> operands, float value, int32_t row,
                  int32_t col, int64_t edge) {
  for (size_t s = 0; s < stages.size(); ++s) {
    const EdgeMapStage& stage = stages[s];
    float rhs = 0.0f;
    switch (stage.kind) {
      case EdgeMapStage::OperandKind::kScalar:
        rhs = stage.scalar;
        break;
      case EdgeMapStage::OperandKind::kRowVector:
        rhs = operands[static_cast<size_t>(stage.operand)].at(plan.row_ops[s].Index(row));
        break;
      case EdgeMapStage::OperandKind::kColVector:
        rhs = operands[static_cast<size_t>(stage.operand)].at(col);
        break;
      case EdgeMapStage::OperandKind::kDense:
        rhs = operands[static_cast<size_t>(stage.operand)].at(plan.row_ops[s].Index(row), col);
        break;
      case EdgeMapStage::OperandKind::kEdgeTensor:
        rhs = operands[static_cast<size_t>(stage.operand)].at(edge);
        break;
      case EdgeMapStage::OperandKind::kDot: {
        const tensor::Tensor& u = operands[static_cast<size_t>(stage.operand)];
        const tensor::Tensor& v = operands[static_cast<size_t>(stage.operand2)];
        const int64_t h = u.cols();
        const float* pu = u.data() + plan.row_ops[s].Index(row) * h;
        const float* pv = v.data() + static_cast<int64_t>(col) * h;
        float dot = 0.0f;
        for (int64_t j = 0; j < h; ++j) {
          dot += pu[j] * pv[j];
        }
        rhs = dot;
        break;
      }
    }
    value = ApplyBinaryOp(stage.op, value, rhs);
  }
  return value;
}

int64_t OperandBytes(std::span<const tensor::Tensor> operands) {
  int64_t bytes = 0;
  for (const tensor::Tensor& t : operands) {
    bytes += t.numel() * static_cast<int64_t>(sizeof(float));
  }
  return bytes;
}

}  // namespace

Matrix FusedEdgeMap(const Matrix& m, const std::vector<EdgeMapStage>& stages,
                    std::span<const tensor::Tensor> operands) {
  const Compressed& csc = m.Csc();
  const StagePlan plan = CheckStages(m, stages, operands);
  device::KernelScope kernel(CurrentStream());
  const bool weighted = csc.values.defined();
  ValueArray out = ValueArray::Empty(m.nnz());
  for (int64_t c = 0; c < m.num_cols(); ++c) {
    for (int64_t e = csc.indptr[c]; e < csc.indptr[c + 1]; ++e) {
      const float base = weighted ? csc.values[e] : 1.0f;
      out[e] =
          ApplyStages(stages, plan, operands, base, csc.indices[e], static_cast<int32_t>(c), e);
    }
  }
  kernel.Finish({.parallel_items = m.nnz(),
                 .hbm_bytes = m.nnz() * int64_t{12} + OperandBytes(operands)});
  return m.WithValues(Format::kCsc, std::move(out));
}

ValueArray FusedEdgeMapReduce(const Matrix& m, const std::vector<EdgeMapStage>& stages,
                              std::span<const tensor::Tensor> operands, int axis) {
  GS_CHECK(axis == 0 || axis == 1);
  const Compressed& csc = m.Csc();
  const StagePlan plan = CheckStages(m, stages, operands);
  device::KernelScope kernel(CurrentStream());
  const bool weighted = csc.values.defined();
  ValueArray out = ValueArray::Full(axis == 0 ? m.num_rows() : m.num_cols(), 0.0f);
  for (int64_t c = 0; c < m.num_cols(); ++c) {
    for (int64_t e = csc.indptr[c]; e < csc.indptr[c + 1]; ++e) {
      const float base = weighted ? csc.values[e] : 1.0f;
      const float mapped =
          ApplyStages(stages, plan, operands, base, csc.indices[e], static_cast<int32_t>(c), e);
      out[axis == 0 ? csc.indices[e] : c] += mapped;
    }
  }
  kernel.Finish({.parallel_items = m.nnz(),
                 .hbm_bytes = m.nnz() * int64_t{8} + out.bytes() + OperandBytes(operands)});
  return out;
}

}  // namespace gs::sparse
