#include "sparse/batch.h"

#include <algorithm>
#include <vector>

#include "common/error.h"
#include "common/sampling.h"
#include "sparse/kernels_internal.h"

namespace gs::sparse {

using internal::CurrentStream;
using internal::PickFormat;

namespace {

// Decodes a labeled id against the base graph's node count.
struct Labeled {
  int64_t segment;
  int32_t node;
};

Labeled Decode(int32_t labeled, int64_t num_nodes) {
  GS_CHECK_GE(labeled, 0);
  return {labeled / num_nodes, static_cast<int32_t>(labeled % num_nodes)};
}

// The segmented samplers are written against an rng-per-segment provider so
// one implementation serves both entry points: the legacy epoch path hands
// every segment the same shared Rng (draws interleave across segments in
// column/segment order — statistically a super-batch, not bit-equal to
// per-batch runs), while the serving path hands each segment its own stream
// (bit-equal to running that segment alone; see batch.h).
template <typename RngFor>
Matrix SegmentedFusedSliceSampleImpl(const Matrix& base, const IdArray& labeled_cols,
                                     int64_t num_segments, int64_t k, RngFor&& rng_for) {
  GS_CHECK(!base.has_col_ids()) << "super-batch extract requires the base graph";
  GS_CHECK_GT(k, 0);
  const Compressed& csc = base.Csc();
  const int64_t n = base.num_cols();
  device::KernelScope kernel(CurrentStream());
  const bool weighted = csc.values.defined();
  const int64_t t = labeled_cols.size();

  Compressed sub;
  sub.indptr = OffsetArray::Empty(t + 1);
  sub.indptr[0] = 0;
  std::vector<int32_t> picked;
  std::vector<int32_t> indices;
  std::vector<float> values;
  indices.reserve(static_cast<size_t>(k * t));
  int64_t pcie = 0;

  for (int64_t i = 0; i < t; ++i) {
    const Labeled lc = Decode(labeled_cols[i], n);
    GS_CHECK_LT(lc.segment, num_segments);
    const int64_t begin = csc.indptr[lc.node];
    const int64_t deg = csc.indptr[lc.node + 1] - begin;
    const int32_t offset = static_cast<int32_t>(lc.segment * n);
    picked.clear();
    SampleUniformWithoutReplacement(deg, k, rng_for(lc.segment), picked);
    for (int32_t slot : picked) {
      indices.push_back(csc.indices[begin + slot] + offset);
      if (weighted) {
        values.push_back(csc.values[begin + slot]);
      }
    }
    sub.indptr[i + 1] = static_cast<int64_t>(indices.size());
    pcie += internal::UvaCharge(base, static_cast<uint64_t>(lc.node),
                                static_cast<int64_t>(picked.size()) * 4);
  }

  const int64_t out_nnz = static_cast<int64_t>(indices.size());
  sub.indices = IdArray::FromVector(indices);
  if (weighted) {
    sub.values = ValueArray::FromVector(values);
  }
  Matrix out = Matrix::FromCsc(num_segments * n, t, std::move(sub));
  out.SetColIds(labeled_cols.Clone());
  kernel.Finish({.parallel_items = std::max<int64_t>(out_nnz, 1),
                 .hbm_bytes = out_nnz * int64_t{8},
                 .pcie_bytes = pcie});
  return out;
}

template <typename RngFor>
Matrix SegmentedCollectiveSampleImpl(const Matrix& m, int64_t k, const ValueArray& row_probs,
                                     int64_t num_nodes, RngFor&& rng_for) {
  GS_CHECK_GT(k, 0);
  // row_probs is either in the matrix's local row space (length ==
  // num_rows) or in the labeled row space, gathered through the row id map
  // when the input was compacted — the same contract CollectiveSample
  // implements with RowOperand. Per-node probability vectors repeat per
  // segment under labeled ids, hence the modulo.
  const bool local_probs = row_probs.size() == m.num_rows();
  GS_CHECK(local_probs || m.has_row_ids() ||
           (row_probs.size() > 0 && m.num_rows() % row_probs.size() == 0))
      << "row operand length " << row_probs.size() << " does not match num_rows "
      << m.num_rows() << " and the matrix has no row id map";
  const auto prob_of = [&](int64_t r) -> float {
    if (local_probs) {
      return row_probs[r];
    }
    return row_probs[m.GlobalRowId(static_cast<int32_t>(r)) % row_probs.size()];
  };
  device::KernelScope kernel(CurrentStream());

  // A row's segment comes from its labeled id (works both for the full
  // labeled space and for compacted matrices whose row_ids carry labels).
  int64_t num_segments = 0;
  std::vector<int64_t> segment_of(static_cast<size_t>(m.num_rows()));
  for (int64_t r = 0; r < m.num_rows(); ++r) {
    const int64_t s = m.GlobalRowId(static_cast<int32_t>(r)) / num_nodes;
    segment_of[static_cast<size_t>(r)] = s;
    num_segments = std::max(num_segments, s + 1);
  }

  // Gather positive-probability candidates per segment, then sample each
  // segment independently (the "segmented collective sample" operator).
  std::vector<int32_t> selected;
  {
    std::vector<std::vector<int32_t>> candidates(static_cast<size_t>(num_segments));
    std::vector<std::vector<float>> weights(static_cast<size_t>(num_segments));
    for (int64_t r = 0; r < m.num_rows(); ++r) {
      const float p = prob_of(r);
      if (p > 0.0f) {
        const size_t s = static_cast<size_t>(segment_of[static_cast<size_t>(r)]);
        candidates[s].push_back(static_cast<int32_t>(r));
        weights[s].push_back(p);
      }
    }
    for (int64_t s = 0; s < num_segments; ++s) {
      std::vector<int32_t> picked;
      SampleWeightedWithoutReplacement(weights[static_cast<size_t>(s)], k, rng_for(s), picked);
      for (int32_t slot : picked) {
        selected.push_back(candidates[static_cast<size_t>(s)][static_cast<size_t>(slot)]);
      }
    }
  }
  std::sort(selected.begin(), selected.end());
  const int64_t s = static_cast<int64_t>(selected.size());

  // Filter edges to the selected rows, preserving CSC column grouping.
  const Compressed& csc = m.Csc();
  const bool weighted = csc.values.defined();
  std::vector<int32_t> row_map(static_cast<size_t>(m.num_rows()), -1);
  IdArray row_ids = IdArray::Empty(s);
  for (int64_t i = 0; i < s; ++i) {
    row_map[static_cast<size_t>(selected[static_cast<size_t>(i)])] = static_cast<int32_t>(i);
    row_ids[i] = m.GlobalRowId(selected[static_cast<size_t>(i)]);
  }
  Compressed out;
  out.indptr = OffsetArray::Empty(m.num_cols() + 1);
  out.indptr[0] = 0;
  std::vector<int32_t> idx;
  std::vector<float> vals;
  for (int64_t c = 0; c < m.num_cols(); ++c) {
    for (int64_t e = csc.indptr[c]; e < csc.indptr[c + 1]; ++e) {
      const int32_t mapped = row_map[static_cast<size_t>(csc.indices[e])];
      if (mapped >= 0) {
        idx.push_back(mapped);
        if (weighted) {
          vals.push_back(csc.values[e]);
        }
      }
    }
    out.indptr[c + 1] = static_cast<int64_t>(idx.size());
  }
  out.indices = IdArray::FromVector(idx);
  if (weighted) {
    out.values = ValueArray::FromVector(vals);
  }
  Matrix result = Matrix::FromCsc(s, m.num_cols(), std::move(out));
  result.SetRowIds(std::move(row_ids));
  result.SetRowsCompact(true);
  result.SetColIds(m.col_ids());
  kernel.Finish({.parallel_items = m.nnz(), .hbm_bytes = m.nnz() * int64_t{12}});
  return result;
}

}  // namespace

Matrix SegmentedSliceColumns(const Matrix& base, const IdArray& labeled_cols,
                             int64_t num_segments) {
  GS_CHECK(!base.has_col_ids()) << "super-batch extract requires the base graph";
  const Compressed& csc = base.Csc();
  const int64_t n = base.num_cols();
  device::KernelScope kernel(CurrentStream());
  const bool weighted = csc.values.defined();
  const int64_t t = labeled_cols.size();

  Compressed sub;
  sub.indptr = OffsetArray::Empty(t + 1);
  sub.indptr[0] = 0;
  for (int64_t i = 0; i < t; ++i) {
    const Labeled lc = Decode(labeled_cols[i], n);
    GS_CHECK_LT(lc.segment, num_segments);
    sub.indptr[i + 1] = sub.indptr[i] + (csc.indptr[lc.node + 1] - csc.indptr[lc.node]);
  }
  const int64_t out_nnz = sub.indptr[t];
  sub.indices = IdArray::Empty(out_nnz);
  if (weighted) {
    sub.values = ValueArray::Empty(out_nnz);
  }
  int64_t pcie = 0;
  for (int64_t i = 0; i < t; ++i) {
    const Labeled lc = Decode(labeled_cols[i], n);
    const int64_t begin = csc.indptr[lc.node];
    const int64_t len = csc.indptr[lc.node + 1] - begin;
    const int32_t offset = static_cast<int32_t>(lc.segment * n);
    for (int64_t e = 0; e < len; ++e) {
      sub.indices[sub.indptr[i] + e] = csc.indices[begin + e] + offset;
    }
    if (weighted) {
      std::copy_n(csc.values.data() + begin, len, sub.values.data() + sub.indptr[i]);
    }
    pcie += internal::UvaCharge(base, static_cast<uint64_t>(lc.node),
                                len * static_cast<int64_t>(weighted ? 8 : 4));
  }

  Matrix out = Matrix::FromCsc(num_segments * n, t, std::move(sub));
  out.SetColIds(labeled_cols.Clone());
  kernel.Finish({.parallel_items = std::max<int64_t>(out_nnz, 1),
                 .hbm_bytes = 2 * out_nnz * int64_t{8},
                 .pcie_bytes = pcie});
  return out;
}

Matrix SegmentedFusedSliceSample(const Matrix& base, const IdArray& labeled_cols,
                                 int64_t num_segments, int64_t k, Rng& rng) {
  return SegmentedFusedSliceSampleImpl(base, labeled_cols, num_segments, k,
                                       [&rng](int64_t) -> Rng& { return rng; });
}

Matrix SegmentedFusedSliceSample(const Matrix& base, const IdArray& labeled_cols,
                                 int64_t num_segments, int64_t k,
                                 std::span<Rng> segment_rngs) {
  GS_CHECK_GE(static_cast<int64_t>(segment_rngs.size()), num_segments)
      << "need one rng per segment";
  return SegmentedFusedSliceSampleImpl(
      base, labeled_cols, num_segments, k,
      [segment_rngs](int64_t s) -> Rng& { return segment_rngs[static_cast<size_t>(s)]; });
}

Matrix SegmentedCollectiveSample(const Matrix& m, int64_t k, const ValueArray& row_probs,
                                 int64_t num_nodes, Rng& rng) {
  return SegmentedCollectiveSampleImpl(m, k, row_probs, num_nodes,
                                       [&rng](int64_t) -> Rng& { return rng; });
}

Matrix SegmentedCollectiveSample(const Matrix& m, int64_t k, const ValueArray& row_probs,
                                 int64_t num_nodes, std::span<Rng> segment_rngs) {
  return SegmentedCollectiveSampleImpl(m, k, row_probs, num_nodes,
                                       [segment_rngs](int64_t s) -> Rng& {
                                         GS_CHECK_LT(s, static_cast<int64_t>(segment_rngs.size()))
                                             << "need one rng per segment";
                                         return segment_rngs[static_cast<size_t>(s)];
                                       });
}

Matrix SegmentedIndividualSample(const Matrix& m, int64_t k, const ValueArray& probs,
                                 int64_t num_nodes, std::span<Rng> segment_rngs) {
  GS_CHECK_GT(k, 0) << "fanout must be positive";
  GS_CHECK(m.has_col_ids()) << "segmented individual sample needs labeled col ids";
  if (probs.defined()) {
    GS_CHECK_EQ(probs.size(), m.nnz()) << "probs must align with the matrix's CSC edge order";
  }
  const Compressed& csc = m.Csc();
  const bool weighted = csc.values.defined();
  device::KernelScope kernel(CurrentStream());

  const int64_t t = m.num_cols();
  Compressed out;
  out.indptr = OffsetArray::Empty(t + 1);
  out.indptr[0] = 0;
  std::vector<int32_t> picked;  // per-column scratch of selected slots
  std::vector<int32_t> indices;
  std::vector<float> values;
  indices.reserve(static_cast<size_t>(std::min(m.nnz(), k * t)));
  int64_t pcie = 0;

  for (int64_t c = 0; c < t; ++c) {
    const Labeled lc = Decode(m.GlobalColId(static_cast<int32_t>(c)), num_nodes);
    GS_CHECK_LT(lc.segment, static_cast<int64_t>(segment_rngs.size()))
        << "need one rng per segment";
    Rng& rng = segment_rngs[static_cast<size_t>(lc.segment)];
    const int64_t begin = csc.indptr[c];
    const int64_t deg = csc.indptr[c + 1] - begin;
    picked.clear();
    if (probs.defined()) {
      SampleWeightedWithoutReplacement(
          std::span<const float>(probs.data() + begin, static_cast<size_t>(deg)), k, rng,
          picked);
    } else {
      SampleUniformWithoutReplacement(deg, k, rng, picked);
    }
    std::sort(picked.begin(), picked.end());  // canonical output order
    for (int32_t slot : picked) {
      indices.push_back(csc.indices[begin + slot]);
      if (weighted) {
        values.push_back(csc.values[begin + slot]);
      }
    }
    out.indptr[c + 1] = static_cast<int64_t>(indices.size());
    if (m.IsUva()) {
      pcie += internal::UvaCharge(m, static_cast<uint64_t>(lc.node), deg * int64_t{4});
    }
  }

  const int64_t out_nnz = static_cast<int64_t>(indices.size());
  out.indices = IdArray::FromVector(indices);
  if (weighted) {
    out.values = ValueArray::FromVector(values);
  }
  Matrix result = Matrix::FromCsc(m.num_rows(), t, std::move(out));
  internal::InheritRowSpace(m, result);
  result.SetColIds(m.col_ids());
  kernel.Finish({.parallel_items = std::max<int64_t>(m.nnz(), 1),
                 .hbm_bytes = m.nnz() * int64_t{4} + out_nnz * int64_t{8},
                 .pcie_bytes = pcie});
  return result;
}

Matrix SliceColumnRange(const Matrix& m, int64_t begin, int64_t end) {
  GS_CHECK(begin >= 0 && begin <= end && end <= m.num_cols());
  const Compressed& csc = m.Csc();
  device::KernelScope kernel(CurrentStream());
  const bool weighted = csc.values.defined();
  const int64_t t = end - begin;
  const int64_t e_begin = csc.indptr[begin];
  const int64_t e_end = csc.indptr[end];
  const int64_t out_nnz = e_end - e_begin;

  Compressed sub;
  sub.indptr = OffsetArray::Empty(t + 1);
  for (int64_t i = 0; i <= t; ++i) {
    sub.indptr[i] = csc.indptr[begin + i] - e_begin;
  }
  sub.indices = IdArray::Empty(out_nnz);
  std::copy_n(csc.indices.data() + e_begin, out_nnz, sub.indices.data());
  if (weighted) {
    sub.values = ValueArray::Empty(out_nnz);
    std::copy_n(csc.values.data() + e_begin, out_nnz, sub.values.data());
  }

  Matrix out = Matrix::FromCsc(m.num_rows(), t, std::move(sub));
  out.SetRowIds(m.row_ids());
  out.SetRowsCompact(false);
  if (m.has_col_ids()) {
    IdArray col_ids = IdArray::Empty(t);
    std::copy_n(m.col_ids().data() + begin, t, col_ids.data());
    out.SetColIds(std::move(col_ids));
  }
  kernel.Finish({.parallel_items = t, .hbm_bytes = 2 * out_nnz * int64_t{8}});
  return out;
}

IdArray MapIdsModulo(const IdArray& ids, int64_t n) {
  device::KernelScope kernel(CurrentStream());
  IdArray out = IdArray::Empty(ids.size());
  for (int64_t i = 0; i < ids.size(); ++i) {
    out[i] = ids[i] >= 0 ? static_cast<int32_t>(ids[i] % n) : ids[i];
  }
  kernel.Finish({.parallel_items = ids.size(), .hbm_bytes = 2 * ids.bytes()});
  return out;
}

}  // namespace gs::sparse
