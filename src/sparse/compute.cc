// Compute-step kernels: reductions, broadcasts, elementwise ops, SpMM and
// SDDMM over sparse matrices.

#include <vector>

#include "sparse/kernels.h"
#include "sparse/kernels_internal.h"
#include "tensor/tensor.h"

namespace gs::sparse {

using internal::CurrentStream;
using internal::PickFormat;

namespace {

// Invokes fn(edge_slot, row_local, col_local) for every edge, with
// `edge_slot` indexing value arrays aligned to `format`.
template <typename Fn>
void ForEachEdge(const Matrix& m, Format format, Fn&& fn) {
  switch (format) {
    case Format::kCsc: {
      const Compressed& csc = m.Csc();
      for (int64_t c = 0; c < m.num_cols(); ++c) {
        for (int64_t e = csc.indptr[c]; e < csc.indptr[c + 1]; ++e) {
          fn(e, csc.indices[e], static_cast<int32_t>(c));
        }
      }
      break;
    }
    case Format::kCsr: {
      const Compressed& csr = m.Csr();
      for (int64_t r = 0; r < m.num_rows(); ++r) {
        for (int64_t e = csr.indptr[r]; e < csr.indptr[r + 1]; ++e) {
          fn(e, static_cast<int32_t>(r), csr.indices[e]);
        }
      }
      break;
    }
    case Format::kCoo: {
      const Coo& coo = m.GetCoo();
      for (int64_t e = 0; e < m.nnz(); ++e) {
        fn(e, coo.row[e], coo.col[e]);
      }
      break;
    }
  }
}

int64_t EdgePassBytes(const Matrix& m, bool weighted) {
  return m.nnz() * static_cast<int64_t>(weighted ? 12 : 8);
}

}  // namespace

ValueArray SumAxis(const Matrix& m, int axis) {
  GS_CHECK(axis == 0 || axis == 1) << "axis must be 0 (rows) or 1 (columns)";
  const Format format = axis == 0 ? PickFormat(m, {Format::kCsr, Format::kCoo, Format::kCsc})
                                  : PickFormat(m, {Format::kCsc, Format::kCoo, Format::kCsr});
  device::KernelScope kernel(CurrentStream());
  const int64_t n = axis == 0 ? m.num_rows() : m.num_cols();
  ValueArray out = ValueArray::Full(n, 0.0f);
  const bool weighted = m.HasValues();
  ValueArray values;
  if (weighted) {
    values = m.ValuesFor(format);
  }
  ForEachEdge(m, format, [&](int64_t e, int32_t r, int32_t c) {
    out[axis == 0 ? r : c] += weighted ? values[e] : 1.0f;
  });
  kernel.Finish({.parallel_items = m.nnz(),
                 .hbm_bytes = EdgePassBytes(m, weighted) + out.bytes(),
                 .pcie_bytes = m.IsUva() ? EdgePassBytes(m, weighted) : 0});
  return out;
}

Matrix Broadcast(const Matrix& m, BinaryOp op, const ValueArray& vec, int axis) {
  GS_CHECK(axis == 0 || axis == 1);
  if (axis == 1) {
    GS_CHECK_EQ(vec.size(), m.num_cols()) << "broadcast vector length must match columns";
  }
  // Row-aligned operands may be local (length num_rows) or global (indexed
  // through row_ids); see kernels_internal.h.
  const internal::RowOperand row_op =
      axis == 0 ? internal::RowOperand(m, vec.size()) : internal::RowOperand(m, m.num_rows());
  const Format format = PickFormat(m, {Format::kCsc, Format::kCoo, Format::kCsr});
  device::KernelScope kernel(CurrentStream());
  const bool weighted = m.HasValues();
  ValueArray values;
  if (weighted) {
    values = m.ValuesFor(format);
  }
  ValueArray out = ValueArray::Empty(m.nnz());
  ForEachEdge(m, format, [&](int64_t e, int32_t r, int32_t c) {
    const float lhs = weighted ? values[e] : 1.0f;
    out[e] = ApplyBinaryOp(op, lhs, vec[axis == 0 ? row_op.Index(r) : c]);
  });
  kernel.Finish({.parallel_items = m.nnz(),
                 .hbm_bytes = EdgePassBytes(m, weighted) + out.bytes() + vec.bytes()});
  return m.WithValues(format, std::move(out));
}

Matrix EltwiseScalar(const Matrix& m, BinaryOp op, float scalar) {
  const Format format = PickFormat(m, {Format::kCsc, Format::kCoo, Format::kCsr});
  device::KernelScope kernel(CurrentStream());
  const bool weighted = m.HasValues();
  ValueArray values;
  if (weighted) {
    values = m.ValuesFor(format);
  }
  ValueArray out = ValueArray::Empty(m.nnz());
  for (int64_t e = 0; e < m.nnz(); ++e) {
    out[e] = ApplyBinaryOp(op, weighted ? values[e] : 1.0f, scalar);
  }
  kernel.Finish({.parallel_items = m.nnz(),
                 .hbm_bytes = (weighted ? 2 : 1) * m.nnz() * int64_t{4}});
  return m.WithValues(format, std::move(out));
}

Matrix EltwiseBinary(const Matrix& a, BinaryOp op, const Matrix& b) {
  GS_CHECK(a.SharesPatternWith(b)) << "elementwise sparse ops require a shared pattern";
  const Format format = PickFormat(a, {Format::kCsc, Format::kCoo, Format::kCsr});
  device::KernelScope kernel(CurrentStream());
  ValueArray va = a.ValuesFor(format);
  ValueArray vb = b.ValuesFor(format);
  ValueArray out = ValueArray::Empty(a.nnz());
  for (int64_t e = 0; e < a.nnz(); ++e) {
    out[e] = ApplyBinaryOp(op, va[e], vb[e]);
  }
  kernel.Finish({.parallel_items = a.nnz(), .hbm_bytes = 3 * a.nnz() * int64_t{4}});
  return a.WithValues(format, std::move(out));
}

Matrix DenseEltwise(const Matrix& m, BinaryOp op, const tensor::Tensor& dense) {
  const internal::RowOperand row_op(m, dense.rows());
  GS_CHECK_EQ(dense.cols(), m.num_cols());
  const Format format = PickFormat(m, {Format::kCsc, Format::kCoo, Format::kCsr});
  device::KernelScope kernel(CurrentStream());
  const bool weighted = m.HasValues();
  ValueArray values;
  if (weighted) {
    values = m.ValuesFor(format);
  }
  ValueArray out = ValueArray::Empty(m.nnz());
  ForEachEdge(m, format, [&](int64_t e, int32_t r, int32_t c) {
    out[e] = ApplyBinaryOp(op, weighted ? values[e] : 1.0f, dense.at(row_op.Index(r), c));
  });
  kernel.Finish({.parallel_items = m.nnz(),
                 .hbm_bytes = EdgePassBytes(m, weighted) + out.bytes() +
                              dense.numel() * int64_t{4}});
  return m.WithValues(format, std::move(out));
}

tensor::Tensor SpMM(const Matrix& m, const tensor::Tensor& dense) {
  GS_CHECK_EQ(dense.rows(), m.num_cols()) << "SpMM inner dimension";
  const int64_t k = dense.cols();
  const Format format = PickFormat(m, {Format::kCsr, Format::kCoo, Format::kCsc});
  device::KernelScope kernel(CurrentStream());
  tensor::Tensor out = tensor::Tensor::Zeros({m.num_rows(), k});
  const bool weighted = m.HasValues();
  ValueArray values;
  if (weighted) {
    values = m.ValuesFor(format);
  }
  ForEachEdge(m, format, [&](int64_t e, int32_t r, int32_t c) {
    const float w = weighted ? values[e] : 1.0f;
    const float* src = dense.data() + static_cast<int64_t>(c) * k;
    float* dst = out.data() + static_cast<int64_t>(r) * k;
    for (int64_t j = 0; j < k; ++j) {
      dst[j] += w * src[j];
    }
  });
  kernel.Finish({.parallel_items = m.nnz() * k,
                 .hbm_bytes = EdgePassBytes(m, weighted) + 2 * m.nnz() * k * int64_t{4}});
  return out;
}

Matrix Sddmm(const Matrix& m, const tensor::Tensor& u, const tensor::Tensor& v,
             bool mul_existing) {
  const internal::RowOperand row_op(m, u.rows());
  GS_CHECK_EQ(v.rows(), m.num_cols());
  GS_CHECK_EQ(u.cols(), v.cols()) << "SDDMM factor widths must match";
  const int64_t h = u.cols();
  const Format format = PickFormat(m, {Format::kCsc, Format::kCoo, Format::kCsr});
  device::KernelScope kernel(CurrentStream());
  const bool weighted = mul_existing && m.HasValues();
  ValueArray values;
  if (weighted) {
    values = m.ValuesFor(format);
  }
  ValueArray out = ValueArray::Empty(m.nnz());
  ForEachEdge(m, format, [&](int64_t e, int32_t r, int32_t c) {
    const float* pu = u.data() + row_op.Index(r) * h;
    const float* pv = v.data() + static_cast<int64_t>(c) * h;
    float dot = 0.0f;
    for (int64_t j = 0; j < h; ++j) {
      dot += pu[j] * pv[j];
    }
    out[e] = weighted ? values[e] * dot : dot;
  });
  kernel.Finish({.parallel_items = m.nnz() * h,
                 .hbm_bytes = m.nnz() * (2 * h + 2) * int64_t{4}});
  return m.WithValues(format, std::move(out));
}

}  // namespace gs::sparse
