// Sparse-matrix kernels backing the matrix-centric API (Table 4 of the
// paper). Every function launches one simulated kernel. Functions pick the
// cheapest *already materialized* format of their inputs; they never convert
// formats implicitly except where documented (the data-layout-selection pass
// owns conversion decisions, see core/passes/layout.*).
//
// Axis convention (matches the paper's Figure 3 usage, not PyTorch):
//   axis = 0 : result/operand indexed by ROW    (length num_rows)
//   axis = 1 : result/operand indexed by COLUMN (length num_cols)

#ifndef GSAMPLER_SPARSE_KERNELS_H_
#define GSAMPLER_SPARSE_KERNELS_H_

#include <span>

#include "common/binary_op.h"
#include "common/rng.h"
#include "sparse/matrix.h"
#include "tensor/tensor.h"

namespace gs::sparse {

// ---------------------------------------------------------------- Extract

// A[:, cols]: keeps the full row dimension, selects columns. `cols` holds
// original-graph ids; they become the result's col_ids. Works on any input
// format (CSC is O(output); COO/CSR scan all edges — this cost asymmetry is
// Table 5's first row). Result is produced in the same format family it was
// computed from.
Matrix SliceColumns(const Matrix& m, const IdArray& cols);

// A[rows, :]: symmetric to SliceColumns (CSR is the fast path).
Matrix SliceRows(const Matrix& m, const IdArray& rows);

// ---------------------------------------------------------------- Compute

// Reduction of edge values onto rows (axis=0) or columns (axis=1).
// Unweighted matrices reduce unit weights (i.e., degrees).
ValueArray SumAxis(const Matrix& m, int axis);

// values'[e] = op(values[e], vec[row(e)]) for axis=0 (vec[col(e)] for
// axis=1). Returns a matrix sharing m's structure.
Matrix Broadcast(const Matrix& m, BinaryOp op, const ValueArray& vec, int axis);

// values'[e] = op(values[e], scalar). Shares structure.
Matrix EltwiseScalar(const Matrix& m, BinaryOp op, float scalar);

// values'[e] = op(a.values[e], b.values[e]); a and b must share their
// sparsity pattern. Shares structure with a.
Matrix EltwiseBinary(const Matrix& a, BinaryOp op, const Matrix& b);

// values'[e] = op(values[e], dense.at(row(e), col(e))) with dense of shape
// (num_rows, num_cols). Shares structure.
Matrix DenseEltwise(const Matrix& m, BinaryOp op, const tensor::Tensor& dense);

// A @ D: (num_rows x num_cols) @ (num_cols x k) -> dense (num_rows x k).
tensor::Tensor SpMM(const Matrix& m, const tensor::Tensor& dense);

// Sampled dense-dense matmul: values'[e] = dot(u[row(e)], v[col(e)]),
// optionally multiplied into the existing edge values (mul_existing). u is
// (num_rows x h), v is (num_cols x h). This is the fused form of
// `sub_A * (U @ V^T)` that the Edge-Map fusion pass emits for PASS-style
// attention computation.
Matrix Sddmm(const Matrix& m, const tensor::Tensor& u, const tensor::Tensor& v,
             bool mul_existing);

// ----------------------------------------------------------------- Select

// Node-wise selection: for every column, samples up to k of its edges
// without replacement, uniformly or proportional to `probs` (edge weights
// aligned with m's CSC order; pass an undefined array for uniform). Requires
// / materializes CSC. Result: CSC, same column set, original row dimension.
Matrix IndividualSample(const Matrix& m, int64_t k, const ValueArray& probs, Rng& rng);

// Layer-wise selection: samples up to k distinct row nodes proportional to
// row_probs (length num_rows, non-negative; rows with zero probability are
// never selected) and keeps only edges whose row was selected. Result shape
// is (#selected x num_cols) with rows compacted (row_ids set). Fast path
// gathers selected rows from CSR; COO/CSC paths scan all edges (Table 5 row
// 3).
Matrix CollectiveSample(const Matrix& m, int64_t k, const ValueArray& row_probs, Rng& rng);

// Fused Extract-Select for uniform node-wise sampling: samples k
// in-neighbors for each of `cols` directly from the base matrix without
// materializing the sliced subgraph (Figure 5a). Requires CSC on m.
Matrix FusedSliceSample(const Matrix& m, const IdArray& cols, int64_t k, Rng& rng);

// --------------------------------------------------------------- Finalize

// Original-graph ids of rows that carry at least one edge (the sampled
// neighbors). For rows-compact matrices this is just row_ids.
IdArray RowIds(const Matrix& m);

// Original-graph ids of all columns.
IdArray ColIds(const Matrix& m);

// Drops empty rows and renumbers the remainder; sets row_ids and
// rows_compact. Costs a full pass plus index rewrite — the compaction the
// layout pass weighs against smaller downstream matrices (Section 4.3).
Matrix CompactRows(const Matrix& m);

// CompactRows for a matrix whose populated rows are known to lie within
// [row_begin, row_end) of its (possibly much larger) row space — the
// super-batch scatter case, where member b of a block-diagonal super
// matrix only touches rows [b*N, (b+1)*N). A dense mark/renumber table
// sized to the window keeps the cost O(window + nnz) regardless of how
// many segments share the labeled row space.
Matrix CompactRowsInWindow(const Matrix& m, int64_t row_begin, int64_t row_end);

// Sorted union of id arrays; negative ids (dead walk ends) are dropped.
IdArray Unique(std::span<const IdArray> arrays);

// Gathers vec[ids[i]] into a new array (e.g., row_probs[sample_A.row()]).
ValueArray GatherValues(const ValueArray& vec, const IdArray& ids);

// ------------------------------------------------------------------ Walks

// One uniform random-walk step: out[i] = uniformly sampled in-neighbor of
// cur[i] in m, or -1 when cur[i] is -1 or has no in-neighbors. Requires CSC.
IdArray UniformWalkStep(const Matrix& m, const IdArray& cur, Rng& rng);

// One random-walk step with restarts (PinSAGE/HetGNN): with probability
// `restart_prob`, or when cur[i] has no in-neighbors, the walker jumps back
// to root[i]; otherwise it moves to a uniform in-neighbor.
IdArray UniformWalkStepRestart(const Matrix& m, const IdArray& cur, const IdArray& root,
                               float restart_prob, Rng& rng);

// PinSAGE neighbor construction: given per-root walk traces (`steps[t][i]`
// is walker i's position after step t; -1 entries are skipped), counts
// visits per root and keeps each root's k most-visited nodes (the root
// itself excluded). Returns a (num_rows x #roots) CSC matrix whose values
// are the visit counts (the importance weights PinSAGE aggregates with).
Matrix TopKVisited(std::span<const IdArray> steps, const IdArray& roots, int64_t k,
                   int64_t num_rows);

// One node2vec step: neighbor r of cur[i] gets bias 1/p when r == prev[i],
// 1 when r is also an in/out-neighbor of prev[i], and 1/q otherwise
// (prev[i] == -1 means a first, uniform step). Requires CSC with
// per-column-sorted indices for the adjacency test.
IdArray Node2VecStep(const Matrix& m, const IdArray& cur, const IdArray& prev, float p,
                     float q, Rng& rng);

}  // namespace gs::sparse

#endif  // GSAMPLER_SPARSE_KERNELS_H_
