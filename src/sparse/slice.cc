// Extract-step kernels: A[:, cols] and A[rows, :].

#include <algorithm>
#include <vector>

#include "sparse/kernels.h"
#include "sparse/kernels_internal.h"

namespace gs::sparse {

using internal::CurrentStream;
using internal::PickFormat;

namespace {

// Resolves the requested global ids into local column indices of m.
std::vector<int32_t> LocalizeCols(const Matrix& m, const IdArray& cols) {
  internal::ColLocalizer localizer(m);
  std::vector<int32_t> locals(static_cast<size_t>(cols.size()));
  for (int64_t i = 0; i < cols.size(); ++i) {
    locals[static_cast<size_t>(i)] = localizer.ToLocal(cols[i]);
  }
  return locals;
}

std::vector<int32_t> LocalizeRows(const Matrix& m, const IdArray& rows) {
  internal::RowLocalizer localizer(m);
  std::vector<int32_t> locals(static_cast<size_t>(rows.size()));
  for (int64_t i = 0; i < rows.size(); ++i) {
    locals[static_cast<size_t>(i)] = localizer.ToLocal(rows[i]);
  }
  return locals;
}

// Composes new global col_ids for the output: the requested ids are already
// original-graph ids.
IdArray CloneIds(const IdArray& ids) { return ids.Clone(); }

}  // namespace

Matrix SliceColumns(const Matrix& m, const IdArray& cols) {
  const Format format = PickFormat(m, {Format::kCsc, Format::kCoo, Format::kCsr});
  const int64_t t = cols.size();
  device::KernelScope kernel(CurrentStream());
  std::vector<int32_t> locals = LocalizeCols(m, cols);
  Matrix out;
  int64_t hbm = 0;
  int64_t pcie = 0;

  switch (format) {
    case Format::kCsc: {
      // Fast path: gather the selected columns' edge ranges.
      const Compressed& csc = m.Csc();
      const bool weighted = csc.values.defined();
      Compressed sub;
      sub.indptr = OffsetArray::Empty(t + 1);
      sub.indptr[0] = 0;
      for (int64_t i = 0; i < t; ++i) {
        const int32_t c = locals[static_cast<size_t>(i)];
        sub.indptr[i + 1] = sub.indptr[i] + (csc.indptr[c + 1] - csc.indptr[c]);
      }
      const int64_t out_nnz = sub.indptr[t];
      sub.indices = IdArray::Empty(out_nnz);
      if (weighted) {
        sub.values = ValueArray::Empty(out_nnz);
      }
      for (int64_t i = 0; i < t; ++i) {
        const int32_t c = locals[static_cast<size_t>(i)];
        const int64_t begin = csc.indptr[c];
        const int64_t len = csc.indptr[c + 1] - begin;
        std::copy_n(csc.indices.data() + begin, len, sub.indices.data() + sub.indptr[i]);
        if (weighted) {
          std::copy_n(csc.values.data() + begin, len, sub.values.data() + sub.indptr[i]);
        }
        const int64_t bytes = len * static_cast<int64_t>(weighted ? 8 : 4);
        pcie += internal::UvaCharge(m, static_cast<uint64_t>(cols[i]), bytes);
        hbm += 2 * bytes;
      }
      out = Matrix::FromCsc(m.num_rows(), t, std::move(sub));
      break;
    }
    case Format::kCoo: {
      // Slow path: scan every edge against a column membership table.
      const Coo& coo = m.GetCoo();
      const bool weighted = coo.values.defined();
      std::vector<int32_t> col_map(static_cast<size_t>(m.num_cols()), -1);
      for (int64_t i = 0; i < t; ++i) {
        col_map[static_cast<size_t>(locals[static_cast<size_t>(i)])] = static_cast<int32_t>(i);
      }
      std::vector<int32_t> rows_kept;
      std::vector<int32_t> cols_kept;
      std::vector<float> vals_kept;
      for (int64_t e = 0; e < m.nnz(); ++e) {
        const int32_t mapped = col_map[static_cast<size_t>(coo.col[e])];
        if (mapped >= 0) {
          rows_kept.push_back(coo.row[e]);
          cols_kept.push_back(mapped);
          if (weighted) {
            vals_kept.push_back(coo.values[e]);
          }
        }
      }
      Coo sub;
      sub.row = IdArray::FromVector(rows_kept);
      sub.col = IdArray::FromVector(cols_kept);
      if (weighted) {
        sub.values = ValueArray::FromVector(vals_kept);
      }
      hbm = m.nnz() * int64_t{8} + static_cast<int64_t>(rows_kept.size()) * 8;
      pcie = m.IsUva() ? m.nnz() * int64_t{8} : 0;
      out = Matrix::FromCoo(m.num_rows(), t, std::move(sub));
      break;
    }
    case Format::kCsr: {
      // Slow path: walk every row, keeping edges to selected columns.
      const Compressed& csr = m.Csr();
      const bool weighted = csr.values.defined();
      std::vector<int32_t> col_map(static_cast<size_t>(m.num_cols()), -1);
      for (int64_t i = 0; i < t; ++i) {
        col_map[static_cast<size_t>(locals[static_cast<size_t>(i)])] = static_cast<int32_t>(i);
      }
      Compressed sub;
      sub.indptr = OffsetArray::Empty(m.num_rows() + 1);
      sub.indptr[0] = 0;
      std::vector<int32_t> idx;
      std::vector<float> vals;
      for (int64_t r = 0; r < m.num_rows(); ++r) {
        for (int64_t e = csr.indptr[r]; e < csr.indptr[r + 1]; ++e) {
          const int32_t mapped = col_map[static_cast<size_t>(csr.indices[e])];
          if (mapped >= 0) {
            idx.push_back(mapped);
            if (weighted) {
              vals.push_back(csr.values[e]);
            }
          }
        }
        sub.indptr[r + 1] = static_cast<int64_t>(idx.size());
      }
      sub.indices = IdArray::FromVector(idx);
      if (weighted) {
        sub.values = ValueArray::FromVector(vals);
      }
      hbm = m.nnz() * int64_t{8} + m.num_rows() * 8;
      pcie = m.IsUva() ? m.nnz() * int64_t{8} : 0;
      out = Matrix::FromCsr(m.num_rows(), t, std::move(sub));
      break;
    }
  }

  internal::InheritRowSpace(m, out);
  out.SetColIds(CloneIds(cols));
  kernel.Finish({.parallel_items = std::max<int64_t>(out.nnz(), 1),
                 .hbm_bytes = hbm,
                 .pcie_bytes = pcie});
  return out;
}

Matrix SliceRows(const Matrix& m, const IdArray& rows) {
  const Format format = PickFormat(m, {Format::kCsr, Format::kCoo, Format::kCsc});
  const int64_t t = rows.size();
  device::KernelScope kernel(CurrentStream());
  std::vector<int32_t> locals = LocalizeRows(m, rows);
  Matrix out;
  int64_t hbm = 0;
  int64_t pcie = 0;

  switch (format) {
    case Format::kCsr: {
      const Compressed& csr = m.Csr();
      const bool weighted = csr.values.defined();
      Compressed sub;
      sub.indptr = OffsetArray::Empty(t + 1);
      sub.indptr[0] = 0;
      for (int64_t i = 0; i < t; ++i) {
        const int32_t r = locals[static_cast<size_t>(i)];
        sub.indptr[i + 1] = sub.indptr[i] + (r < 0 ? 0 : csr.indptr[r + 1] - csr.indptr[r]);
      }
      const int64_t out_nnz = sub.indptr[t];
      sub.indices = IdArray::Empty(out_nnz);
      if (weighted) {
        sub.values = ValueArray::Empty(out_nnz);
      }
      for (int64_t i = 0; i < t; ++i) {
        const int32_t r = locals[static_cast<size_t>(i)];
        if (r < 0) {
          continue;  // row absent from a compacted input: empty output row
        }
        const int64_t begin = csr.indptr[r];
        const int64_t len = csr.indptr[r + 1] - begin;
        std::copy_n(csr.indices.data() + begin, len, sub.indices.data() + sub.indptr[i]);
        if (weighted) {
          std::copy_n(csr.values.data() + begin, len, sub.values.data() + sub.indptr[i]);
        }
        const int64_t bytes = len * static_cast<int64_t>(weighted ? 8 : 4);
        pcie += internal::UvaCharge(m, static_cast<uint64_t>(rows[i]) | (uint64_t{1} << 40),
                                    bytes);
        hbm += 2 * bytes;
      }
      out = Matrix::FromCsr(t, m.num_cols(), std::move(sub));
      break;
    }
    case Format::kCoo:
    case Format::kCsc: {
      // Scan path (both remaining formats cost a full edge scan); produces
      // COO to avoid rebuilding compressed offsets on the slow path.
      const Coo& coo = m.GetCoo();
      const bool weighted = coo.values.defined();
      std::vector<int32_t> row_map(static_cast<size_t>(m.num_rows()), -1);
      for (int64_t i = 0; i < t; ++i) {
        const int32_t r = locals[static_cast<size_t>(i)];
        if (r >= 0) {
          row_map[static_cast<size_t>(r)] = static_cast<int32_t>(i);
        }
      }
      std::vector<int32_t> rows_kept;
      std::vector<int32_t> cols_kept;
      std::vector<float> vals_kept;
      for (int64_t e = 0; e < m.nnz(); ++e) {
        const int32_t mapped = row_map[static_cast<size_t>(coo.row[e])];
        if (mapped >= 0) {
          rows_kept.push_back(mapped);
          cols_kept.push_back(coo.col[e]);
          if (weighted) {
            vals_kept.push_back(coo.values[e]);
          }
        }
      }
      Coo sub;
      sub.row = IdArray::FromVector(rows_kept);
      sub.col = IdArray::FromVector(cols_kept);
      if (weighted) {
        sub.values = ValueArray::FromVector(vals_kept);
      }
      hbm = m.nnz() * int64_t{8};
      pcie = m.IsUva() ? m.nnz() * int64_t{8} : 0;
      out = Matrix::FromCoo(t, m.num_cols(), std::move(sub));
      break;
    }
  }

  // The selected rows define a compact row space with the requested ids.
  out.SetRowIds(CloneIds(rows));
  out.SetRowsCompact(true);
  out.SetColIds(m.col_ids());
  kernel.Finish({.parallel_items = std::max<int64_t>(t, 1), .hbm_bytes = hbm, .pcie_bytes = pcie});
  return out;
}

}  // namespace gs::sparse
