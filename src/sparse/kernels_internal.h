// Shared helpers for the sparse kernel implementations. Internal to
// src/sparse; not part of the public API.

#ifndef GSAMPLER_SPARSE_KERNELS_INTERNAL_H_
#define GSAMPLER_SPARSE_KERNELS_INTERNAL_H_

#include <initializer_list>
#include <unordered_map>

#include "common/error.h"
#include "device/device.h"
#include "device/stream.h"
#include "sparse/matrix.h"

namespace gs::sparse::internal {

inline device::Stream& CurrentStream() { return device::Current().stream(); }

// First format in `preference` that is already materialized on m; falls back
// to whatever exists.
inline Format PickFormat(const Matrix& m, std::initializer_list<Format> preference) {
  for (Format f : preference) {
    if (m.HasFormat(f)) {
      return f;
    }
  }
  for (Format f : {Format::kCsc, Format::kCsr, Format::kCoo}) {
    if (m.HasFormat(f)) {
      return f;
    }
  }
  GS_CHECK(false) << "matrix has no materialized format";
  return Format::kCoo;
}

// Translates original-graph ids to local indices of m's column space.
// Identity maps pass through; otherwise builds a hash lookup.
class ColLocalizer {
 public:
  explicit ColLocalizer(const Matrix& m) {
    if (m.has_col_ids()) {
      const IdArray& ids = m.col_ids();
      map_.reserve(static_cast<size_t>(ids.size()));
      for (int64_t i = 0; i < ids.size(); ++i) {
        map_.emplace(ids[i], static_cast<int32_t>(i));
      }
      identity_ = false;
    }
    num_cols_ = m.num_cols();
  }

  int32_t ToLocal(int32_t global) const {
    if (identity_) {
      GS_CHECK(global >= 0 && global < num_cols_)
          << "column id " << global << " out of range " << num_cols_;
      return global;
    }
    auto it = map_.find(global);
    GS_CHECK(it != map_.end()) << "column id " << global << " not present in matrix";
    return it->second;
  }

 private:
  bool identity_ = true;
  int64_t num_cols_ = 0;
  std::unordered_map<int32_t, int32_t> map_;
};

class RowLocalizer {
 public:
  explicit RowLocalizer(const Matrix& m) {
    if (m.has_row_ids()) {
      const IdArray& ids = m.row_ids();
      map_.reserve(static_cast<size_t>(ids.size()));
      for (int64_t i = 0; i < ids.size(); ++i) {
        map_.emplace(ids[i], static_cast<int32_t>(i));
      }
      identity_ = false;
    }
    num_rows_ = m.num_rows();
  }

  // Returns -1 when the id is valid for the original graph but absent from
  // this (possibly compacted) matrix: slicing such a row yields an empty
  // row, not an error.
  int32_t ToLocal(int32_t global) const {
    GS_CHECK_GE(global, 0) << "negative row id";
    if (identity_) {
      GS_CHECK_LT(global, num_rows_) << "row id out of range";
      return global;
    }
    auto it = map_.find(global);
    return it != map_.end() ? it->second : -1;
  }

 private:
  bool identity_ = true;
  int64_t num_rows_ = 0;
  std::unordered_map<int32_t, int32_t> map_;
};

// PCIe bytes for touching `bytes` of adjacency data of node `key` on a
// UVA-resident matrix; 0 for device-resident matrices.
inline int64_t UvaCharge(const Matrix& m, uint64_t key, int64_t bytes) {
  return m.IsUva() ? m.uva_cache()->Access(key, bytes) : 0;
}

// Propagates the row id map from input to a sliced/sampled result. The
// compact flag does NOT propagate: these kernels drop edges, so rows that
// were non-empty in the input may be empty in the output, and a stale
// rows_compact claim flips RowIds from "rows that still carry edges" to
// "every inherited row" — which would make the node-set outputs depend on
// whether a layout pass happened to compact the input (a plan decision must
// never change sampled results; the differential oracle checks exactly
// this). Kernels that build a fresh row space whose rows are the intended
// node set (collective sample, slice-rows, compact-rows) set the flag
// themselves.
inline void InheritRowSpace(const Matrix& in, Matrix& out) {
  out.SetRowIds(in.row_ids());
  out.SetRowsCompact(false);
}

// Resolves a row-aligned vector operand that may live in either the
// matrix's local row space (length == num_rows) or the original graph's
// global node space (anything else, indexed through row_ids). This is the
// global-to-local id translation that row compaction (Section 4.3)
// otherwise forces on users.
class RowOperand {
 public:
  RowOperand(const Matrix& m, int64_t operand_rows)
      : matrix_(&m), operand_rows_(operand_rows) {
    local_ = operand_rows == m.num_rows();
    // Under super-batching the row space is labeled (segment * n + node)
    // while per-node operands keep length n; the label folds away with a
    // modulo, both through an explicit row id map (compacted matrices
    // inherit labeled ids) and in the full labeled space where global ids
    // are the identity and num_rows is a multiple of the operand length.
    GS_CHECK(local_ || m.has_row_ids() ||
             (operand_rows > 0 && m.num_rows() % operand_rows == 0))
        << "row operand length " << operand_rows << " does not match num_rows "
        << m.num_rows() << " and the matrix has no row id map";
  }

  int64_t Index(int32_t local_row) const {
    return local_ ? local_row : matrix_->GlobalRowId(local_row) % operand_rows_;
  }

  bool local() const { return local_; }

 private:
  const Matrix* matrix_;
  int64_t operand_rows_;
  bool local_;
};

}  // namespace gs::sparse::internal

#endif  // GSAMPLER_SPARSE_KERNELS_INTERNAL_H_
