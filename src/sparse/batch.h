// Super-batch (segmented) kernels — Section 4.4 of the paper.
//
// Super-batch sampling runs B independent mini-batches through one kernel
// sequence. Non-interference is guaranteed by giving each mini-batch its own
// id space: a node v of mini-batch b is labeled `b * num_nodes + v`. The
// segmented extract/select kernels below understand labeled ids; compute
// operators need no changes because the extracted matrices are block
// diagonal by construction (edges never cross id spaces).

#ifndef GSAMPLER_SPARSE_BATCH_H_
#define GSAMPLER_SPARSE_BATCH_H_

#include <span>

#include "common/rng.h"
#include "sparse/matrix.h"

namespace gs::sparse {

// A[:, labeled_cols] against the base graph: column i holds the in-edges of
// node (labeled_cols[i] % num_nodes); emitted row ids carry the same
// segment label. Result: CSC, num_rows = num_segments * num_nodes,
// col_ids = labeled_cols.
Matrix SegmentedSliceColumns(const Matrix& base, const IdArray& labeled_cols,
                             int64_t num_segments);

// Fused extract + uniform node-wise sample of k in-neighbors per labeled
// frontier (the super-batch counterpart of FusedSliceSample).
Matrix SegmentedFusedSliceSample(const Matrix& base, const IdArray& labeled_cols,
                                 int64_t num_segments, int64_t k, Rng& rng);

// Per-segment-RNG variant (serving / request coalescing): every draw for a
// column of segment b comes exclusively from segment_rngs[b], so segment
// b's sample is bit-identical to running that segment alone (one segment,
// the same RNG stream) — the property the request coalescer relies on.
Matrix SegmentedFusedSliceSample(const Matrix& base, const IdArray& labeled_cols,
                                 int64_t num_segments, int64_t k,
                                 std::span<Rng> segment_rngs);

// Layer-wise sampling per segment: independently samples up to k rows within
// each segment's labeled id range [s*num_nodes, (s+1)*num_nodes) according
// to row_probs (length m.num_rows()), then keeps only edges whose row was
// selected. Rows come out compacted with labeled row_ids.
Matrix SegmentedCollectiveSample(const Matrix& m, int64_t k, const ValueArray& row_probs,
                                 int64_t num_nodes, Rng& rng);

// Per-segment-RNG variant; see SegmentedFusedSliceSample above.
Matrix SegmentedCollectiveSample(const Matrix& m, int64_t k, const ValueArray& row_probs,
                                 int64_t num_nodes, std::span<Rng> segment_rngs);

// Node-wise sample of k in-neighbors per column on a segmented matrix whose
// col ids carry labels: column j's draws come from
// segment_rngs[col_label / num_nodes]. `probs` (optional) must align with
// the matrix's CSC edge order, exactly like IndividualSample.
Matrix SegmentedIndividualSample(const Matrix& m, int64_t k, const ValueArray& probs,
                                 int64_t num_nodes, std::span<Rng> segment_rngs);

// Slices a contiguous column range [begin, end) preserving the row space —
// used to split a super-batch result back into per-batch samples. Requires
// CSC.
Matrix SliceColumnRange(const Matrix& m, int64_t begin, int64_t end);

// out[i] = ids[i] % n (labeled id -> original node id); negatives pass
// through.
IdArray MapIdsModulo(const IdArray& ids, int64_t n);

}  // namespace gs::sparse

#endif  // GSAMPLER_SPARSE_BATCH_H_
