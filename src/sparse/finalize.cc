// Finalize-step kernels: id extraction, compaction, set union.

#include <algorithm>
#include <vector>

#include "sparse/kernels.h"
#include "sparse/kernels_internal.h"

namespace gs::sparse {

using internal::CurrentStream;
using internal::PickFormat;

namespace {

// Marks rows that carry at least one edge; returns locals in ascending
// order. For matrices whose row dimension far exceeds their edge count
// (e.g. super-batch block diagonals with num_rows = B * |V|), a
// sort-unique over the edge endpoints avoids the O(num_rows) mark array.
std::vector<int32_t> NonEmptyRows(const Matrix& m) {
  const Format format = PickFormat(m, {Format::kCsr, Format::kCoo, Format::kCsc});
  if (format != Format::kCsr && m.nnz() * 8 < m.num_rows()) {
    std::vector<int32_t> rows;
    rows.reserve(static_cast<size_t>(m.nnz()));
    if (format == Format::kCoo) {
      const Coo& coo = m.GetCoo();
      rows.assign(coo.row.data(), coo.row.data() + m.nnz());
    } else {
      const Compressed& csc = m.Csc();
      rows.assign(csc.indices.data(), csc.indices.data() + m.nnz());
    }
    std::sort(rows.begin(), rows.end());
    rows.erase(std::unique(rows.begin(), rows.end()), rows.end());
    return rows;
  }

  std::vector<uint8_t> mark(static_cast<size_t>(m.num_rows()), 0);
  switch (format) {
    case Format::kCsr: {
      const Compressed& csr = m.Csr();
      for (int64_t r = 0; r < m.num_rows(); ++r) {
        mark[static_cast<size_t>(r)] = csr.indptr[r + 1] > csr.indptr[r] ? 1 : 0;
      }
      break;
    }
    case Format::kCoo: {
      const Coo& coo = m.GetCoo();
      for (int64_t e = 0; e < m.nnz(); ++e) {
        mark[static_cast<size_t>(coo.row[e])] = 1;
      }
      break;
    }
    case Format::kCsc: {
      const Compressed& csc = m.Csc();
      for (int64_t e = 0; e < m.nnz(); ++e) {
        mark[static_cast<size_t>(csc.indices[e])] = 1;
      }
      break;
    }
  }
  std::vector<int32_t> rows;
  for (int64_t r = 0; r < m.num_rows(); ++r) {
    if (mark[static_cast<size_t>(r)] != 0) {
      rows.push_back(static_cast<int32_t>(r));
    }
  }
  return rows;
}

}  // namespace

IdArray RowIds(const Matrix& m) {
  device::KernelScope kernel(CurrentStream());
  if (m.rows_compact()) {
    // row_ids already enumerates the node set.
    IdArray out = m.has_row_ids() ? m.row_ids().Clone() : IdArray::Empty(m.num_rows());
    if (!m.has_row_ids()) {
      for (int64_t i = 0; i < m.num_rows(); ++i) {
        out[i] = static_cast<int32_t>(i);
      }
    }
    kernel.Finish({.parallel_items = m.num_rows(), .hbm_bytes = out.bytes()});
    return out;
  }
  std::vector<int32_t> locals = NonEmptyRows(m);
  IdArray out = IdArray::Empty(static_cast<int64_t>(locals.size()));
  for (size_t i = 0; i < locals.size(); ++i) {
    out[static_cast<int64_t>(i)] = m.GlobalRowId(locals[i]);
  }
  kernel.Finish({.parallel_items = m.nnz(),
                 .hbm_bytes = m.nnz() * int64_t{4} + m.num_rows() + out.bytes()});
  return out;
}

IdArray ColIds(const Matrix& m) {
  device::KernelScope kernel(CurrentStream());
  IdArray out = IdArray::Empty(m.num_cols());
  for (int64_t c = 0; c < m.num_cols(); ++c) {
    out[c] = m.GlobalColId(static_cast<int32_t>(c));
  }
  kernel.Finish({.parallel_items = m.num_cols(), .hbm_bytes = 2 * out.bytes()});
  return out;
}

Matrix CompactRows(const Matrix& m) {
  device::KernelScope kernel(CurrentStream());
  std::vector<int32_t> kept = NonEmptyRows(m);
  const int64_t s = static_cast<int64_t>(kept.size());
  // Renumber locals; `kept` is sorted, so a binary search replaces the
  // O(num_rows) dense table when the row space is huge and sparse (the
  // super-batch block-diagonal case).
  const bool dense_table = m.num_rows() <= 8 * static_cast<int64_t>(kept.size());
  std::vector<int32_t> renumber;
  if (dense_table) {
    renumber.assign(static_cast<size_t>(m.num_rows()), -1);
  }
  auto renumber_of = [&](int32_t local) -> int32_t {
    if (dense_table) {
      return renumber[static_cast<size_t>(local)];
    }
    const auto it = std::lower_bound(kept.begin(), kept.end(), local);
    GS_INTERNAL(it != kept.end() && *it == local);
    return static_cast<int32_t>(it - kept.begin());
  };
  IdArray row_ids = IdArray::Empty(s);
  for (int64_t i = 0; i < s; ++i) {
    if (dense_table) {
      renumber[static_cast<size_t>(kept[static_cast<size_t>(i)])] = static_cast<int32_t>(i);
    }
    row_ids[i] = m.GlobalRowId(kept[static_cast<size_t>(i)]);
  }

  const Format format = PickFormat(m, {Format::kCsc, Format::kCoo, Format::kCsr});
  Matrix out;
  switch (format) {
    case Format::kCsc: {
      const Compressed& csc = m.Csc();
      Compressed rebuilt;
      rebuilt.indptr = csc.indptr;  // column structure unchanged
      rebuilt.indices = IdArray::Empty(m.nnz());
      rebuilt.values = csc.values;
      for (int64_t e = 0; e < m.nnz(); ++e) {
        rebuilt.indices[e] = renumber_of(csc.indices[e]);
      }
      out = Matrix::FromCsc(s, m.num_cols(), std::move(rebuilt));
      break;
    }
    case Format::kCoo: {
      const Coo& coo = m.GetCoo();
      Coo rebuilt;
      rebuilt.row = IdArray::Empty(m.nnz());
      rebuilt.col = coo.col;
      rebuilt.values = coo.values;
      for (int64_t e = 0; e < m.nnz(); ++e) {
        rebuilt.row[e] = renumber_of(coo.row[e]);
      }
      out = Matrix::FromCoo(s, m.num_cols(), std::move(rebuilt));
      break;
    }
    case Format::kCsr: {
      const Compressed& csr = m.Csr();
      Compressed rebuilt;
      rebuilt.indptr = OffsetArray::Empty(s + 1);
      rebuilt.indptr[0] = 0;
      for (int64_t i = 0; i < s; ++i) {
        const int32_t r = kept[static_cast<size_t>(i)];
        rebuilt.indptr[i + 1] = rebuilt.indptr[i] + (csr.indptr[r + 1] - csr.indptr[r]);
      }
      rebuilt.indices = IdArray::Empty(m.nnz());
      if (csr.values.defined()) {
        rebuilt.values = ValueArray::Empty(m.nnz());
      }
      for (int64_t i = 0; i < s; ++i) {
        const int32_t r = kept[static_cast<size_t>(i)];
        const int64_t begin = csr.indptr[r];
        const int64_t len = csr.indptr[r + 1] - begin;
        std::copy_n(csr.indices.data() + begin, len, rebuilt.indices.data() + rebuilt.indptr[i]);
        if (csr.values.defined()) {
          std::copy_n(csr.values.data() + begin, len, rebuilt.values.data() + rebuilt.indptr[i]);
        }
      }
      out = Matrix::FromCsr(s, m.num_cols(), std::move(rebuilt));
      break;
    }
  }

  out.SetRowIds(std::move(row_ids));
  out.SetRowsCompact(true);
  out.SetColIds(m.col_ids());
  kernel.Finish({.parallel_items = m.nnz(),
                 .hbm_bytes = 2 * m.nnz() * int64_t{4} + m.num_rows() * int64_t{8}});
  return out;
}

Matrix CompactRowsInWindow(const Matrix& m, int64_t row_begin, int64_t row_end) {
  device::KernelScope kernel(CurrentStream());
  GS_CHECK(row_begin >= 0 && row_begin <= row_end && row_end <= m.num_rows())
      << "row window [" << row_begin << ", " << row_end << ") outside row space "
      << m.num_rows();
  const int64_t window = row_end - row_begin;

  // Dense mark over the window only. CompactRows' heuristics would see the
  // full (huge) labeled row space and fall back to sort-unique plus binary
  // search; the window keeps both tables cache-resident.
  const Format format = PickFormat(m, {Format::kCsc, Format::kCoo, Format::kCsr});
  std::vector<uint8_t> mark(static_cast<size_t>(window), 0);
  const auto mark_row = [&](int32_t r) {
    GS_INTERNAL(r >= row_begin && r < row_end);
    mark[static_cast<size_t>(r - row_begin)] = 1;
  };
  switch (format) {
    case Format::kCsc: {
      const Compressed& csc = m.Csc();
      for (int64_t e = 0; e < m.nnz(); ++e) {
        mark_row(csc.indices[e]);
      }
      break;
    }
    case Format::kCoo: {
      const Coo& coo = m.GetCoo();
      for (int64_t e = 0; e < m.nnz(); ++e) {
        mark_row(coo.row[e]);
      }
      break;
    }
    case Format::kCsr: {
      const Compressed& csr = m.Csr();
      for (int64_t r = row_begin; r < row_end; ++r) {
        if (csr.indptr[r + 1] > csr.indptr[r]) {
          mark[static_cast<size_t>(r - row_begin)] = 1;
        }
      }
      break;
    }
  }

  std::vector<int32_t> renumber(static_cast<size_t>(window), -1);
  int64_t s = 0;
  for (int64_t w = 0; w < window; ++w) {
    if (mark[static_cast<size_t>(w)] != 0) {
      renumber[static_cast<size_t>(w)] = static_cast<int32_t>(s++);
    }
  }
  IdArray row_ids = IdArray::Empty(s);
  for (int64_t w = 0; w < window; ++w) {
    const int32_t local = renumber[static_cast<size_t>(w)];
    if (local >= 0) {
      row_ids[local] = m.GlobalRowId(static_cast<int32_t>(row_begin + w));
    }
  }

  Matrix out;
  switch (format) {
    case Format::kCsc: {
      const Compressed& csc = m.Csc();
      Compressed rebuilt;
      rebuilt.indptr = csc.indptr;  // column structure unchanged
      rebuilt.indices = IdArray::Empty(m.nnz());
      rebuilt.values = csc.values;
      for (int64_t e = 0; e < m.nnz(); ++e) {
        rebuilt.indices[e] = renumber[static_cast<size_t>(csc.indices[e] - row_begin)];
      }
      out = Matrix::FromCsc(s, m.num_cols(), std::move(rebuilt));
      break;
    }
    case Format::kCoo: {
      const Coo& coo = m.GetCoo();
      Coo rebuilt;
      rebuilt.row = IdArray::Empty(m.nnz());
      rebuilt.col = coo.col;
      rebuilt.values = coo.values;
      for (int64_t e = 0; e < m.nnz(); ++e) {
        rebuilt.row[e] = renumber[static_cast<size_t>(coo.row[e] - row_begin)];
      }
      out = Matrix::FromCoo(s, m.num_cols(), std::move(rebuilt));
      break;
    }
    case Format::kCsr: {
      const Compressed& csr = m.Csr();
      Compressed rebuilt;
      rebuilt.indptr = OffsetArray::Empty(s + 1);
      rebuilt.indptr[0] = 0;
      rebuilt.indices = IdArray::Empty(m.nnz());
      if (csr.values.defined()) {
        rebuilt.values = ValueArray::Empty(m.nnz());
      }
      int64_t i = 0;
      for (int64_t r = row_begin; r < row_end; ++r) {
        if (renumber[static_cast<size_t>(r - row_begin)] < 0) {
          continue;
        }
        const int64_t begin = csr.indptr[r];
        const int64_t len = csr.indptr[r + 1] - begin;
        rebuilt.indptr[i + 1] = rebuilt.indptr[i] + len;
        std::copy_n(csr.indices.data() + begin, len, rebuilt.indices.data() + rebuilt.indptr[i]);
        if (csr.values.defined()) {
          std::copy_n(csr.values.data() + begin, len, rebuilt.values.data() + rebuilt.indptr[i]);
        }
        ++i;
      }
      out = Matrix::FromCsr(s, m.num_cols(), std::move(rebuilt));
      break;
    }
  }

  out.SetRowIds(std::move(row_ids));
  out.SetRowsCompact(true);
  out.SetColIds(m.col_ids());
  kernel.Finish({.parallel_items = m.nnz(),
                 .hbm_bytes = 2 * m.nnz() * int64_t{4} + window * int64_t{8}});
  return out;
}

IdArray Unique(std::span<const IdArray> arrays) {
  device::KernelScope kernel(CurrentStream());
  std::vector<int32_t> all;
  int64_t total = 0;
  for (const IdArray& a : arrays) {
    total += a.size();
  }
  all.reserve(static_cast<size_t>(total));
  for (const IdArray& a : arrays) {
    for (int64_t i = 0; i < a.size(); ++i) {
      if (a[i] >= 0) {  // -1 marks dead walk ends; never a node
        all.push_back(a[i]);
      }
    }
  }
  std::sort(all.begin(), all.end());
  all.erase(std::unique(all.begin(), all.end()), all.end());
  IdArray out = IdArray::FromVector(all);
  kernel.Finish({.parallel_items = total, .hbm_bytes = (total + out.size()) * int64_t{4}});
  return out;
}

ValueArray GatherValues(const ValueArray& vec, const IdArray& ids) {
  device::KernelScope kernel(CurrentStream());
  ValueArray out = ValueArray::Empty(ids.size());
  for (int64_t i = 0; i < ids.size(); ++i) {
    GS_CHECK(ids[i] >= 0 && ids[i] < vec.size())
        << "gather index " << ids[i] << " out of range " << vec.size();
    out[i] = vec[ids[i]];
  }
  kernel.Finish({.parallel_items = ids.size(), .hbm_bytes = 3 * ids.size() * int64_t{4}});
  return out;
}

}  // namespace gs::sparse
