// Sparse matrix storage with multi-format caching.
//
// A gs::sparse::Matrix is the physical object behind the paper's
// matrix-as-graph abstraction (Section 3.1): rows are source nodes (an edge
// (r, c) is an in-edge of column node c), columns are frontier nodes, and
// the optional `values` array carries edge weights / sampling bias.
//
// A matrix can cache any subset of the three sparse formats the paper uses
// (Section 4.3): CSC (in-neighbors consecutive), CSR (out-neighbors
// consecutive), and COO (edge list). Conversions are explicit kernels so the
// data-layout-selection pass can account for their cost; once materialized a
// format stays cached (all copies of a Matrix share the cache).
//
// Row/column id maps translate local indices to original-graph node ids so
// that row()/column() never expose local ids (Section 3.1, finalize step).
// An undefined id map means "identity" (the matrix spans the whole graph
// dimension).

#ifndef GSAMPLER_SPARSE_MATRIX_H_
#define GSAMPLER_SPARSE_MATRIX_H_

#include <memory>
#include <optional>
#include <string>

#include "device/array.h"
#include "feature/hot_set_cache.h"

namespace gs::sparse {

using IdArray = device::Array<int32_t>;
using OffsetArray = device::Array<int64_t>;
using ValueArray = device::Array<float>;

enum class Format {
  kCsc,
  kCsr,
  kCoo,
};

const char* FormatName(Format format);

// Compressed-sparse data for one axis: CSC when compressed by column (then
// `indices` holds row ids), CSR when compressed by row (then `indices` holds
// column ids). `values` is aligned with `indices`; undefined means the
// matrix is unweighted (implicit 1.0 per edge).
struct Compressed {
  OffsetArray indptr;
  IdArray indices;
  ValueArray values;
};

struct Coo {
  IdArray row;
  IdArray col;
  ValueArray values;  // aligned with row/col; undefined = unweighted
};

class Matrix {
 public:
  Matrix() = default;

  static Matrix FromCsc(int64_t num_rows, int64_t num_cols, Compressed csc);
  static Matrix FromCsr(int64_t num_rows, int64_t num_cols, Compressed csr);
  static Matrix FromCoo(int64_t num_rows, int64_t num_cols, Coo coo);

  bool defined() const { return impl_ != nullptr; }
  int64_t num_rows() const { return impl_->num_rows; }
  int64_t num_cols() const { return impl_->num_cols; }
  int64_t nnz() const { return impl_->nnz; }

  bool HasFormat(Format format) const;
  // Returns the requested format, converting (and caching) if necessary.
  // Conversions run as kernels on the current stream.
  const Compressed& Csc() const;
  const Compressed& Csr() const;
  const Coo& GetCoo() const;

  // True when edge weights are materialized in at least one format.
  bool HasValues() const;
  // Returns values aligned with the given format's edge order, materializing
  // a unit-weight array if the matrix is unweighted.
  ValueArray ValuesFor(Format format) const;

  // Local -> original-graph id maps. Undefined means identity.
  const IdArray& row_ids() const { return impl_->row_ids; }
  const IdArray& col_ids() const { return impl_->col_ids; }
  bool has_row_ids() const { return impl_->row_ids.defined(); }
  bool has_col_ids() const { return impl_->col_ids.defined(); }
  // Maps a local row/col index to its original-graph id.
  int32_t GlobalRowId(int32_t local) const {
    return has_row_ids() ? impl_->row_ids[local] : local;
  }
  int32_t GlobalColId(int32_t local) const {
    return has_col_ids() ? impl_->col_ids[local] : local;
  }

  // True when row_ids directly enumerates the matrix's row node set (set by
  // row slicing, collective sampling, and compaction): finalize's row() can
  // return row_ids without scanning for non-empty rows.
  bool rows_compact() const { return impl_->rows_compact; }

  // UVA: set on host-resident base graphs; kernels consult the cache to
  // charge PCIe bytes for adjacency access.
  feature::HotSetCache* uva_cache() const { return impl_->uva_cache; }
  bool IsUva() const { return impl_->uva_cache != nullptr; }

  // Returns a matrix sharing this matrix's structure but carrying `values`
  // aligned with `format`'s edge order (other formats' caches are dropped so
  // values stay consistent).
  Matrix WithValues(Format format, ValueArray values) const;

  // True if `other` shares this matrix's sparsity structure (same underlying
  // index arrays) — required for pattern-aligned ops like individual_sample
  // with a probability matrix.
  bool SharesPatternWith(const Matrix& other) const;

  // Mutators used by matrix factories / kernels.
  void SetRowIds(IdArray ids);
  void SetColIds(IdArray ids);
  void SetRowsCompact(bool value) { impl_->rows_compact = value; }
  void SetUvaCache(feature::HotSetCache* cache) { impl_->uva_cache = cache; }

  std::string DebugString() const;

 private:
  struct Impl {
    int64_t num_rows = 0;
    int64_t num_cols = 0;
    int64_t nnz = 0;
    std::optional<Compressed> csc;
    std::optional<Compressed> csr;
    std::optional<Coo> coo;
    IdArray row_ids;
    IdArray col_ids;
    bool rows_compact = false;
    feature::HotSetCache* uva_cache = nullptr;
  };

  std::shared_ptr<Impl> impl_;
};

}  // namespace gs::sparse

#endif  // GSAMPLER_SPARSE_MATRIX_H_
