// gs::shard — multi-device sharded sampling with cross-shard frontier
// exchange.
//
// A ShardGroup partitions a graph across N simulated devices
// (graph::Partitioner) and runs the full sampling engine per shard: one
// device::Device (allocator + stream set) per shard, one SamplerSession per
// shard over a single shared frozen CompiledPlan. Each frontier hop
// executes locally; frontier nodes whose adjacency is owned by a remote
// shard are detected by a FrontierExchange observer, which charges one
// coalesced all-to-all per hop at the profile's interconnect_ns_per_byte —
// the shard-to-shard analog of the UVA PCIe charge.
//
// Cost-model tap, not a data-path fork: after the (simulated) exchange a
// shard holds exactly the adjacency the full matrix would give, so every
// shard session binds the full graph and the exchange only advances the
// shard's virtual clock and counters. Sharded sampling is therefore
// bit-identical to single-device SampleSeeded with the same plan and seed —
// the property the oracle test checks — while capacity (requests per
// simulated second) scales with the shard count because each shard's work
// lands on its own timeline.
//
// High availability (gs::ha): with ShardGroupOptions::num_replicas > 1 the
// partition mirrors each shard's segment onto replica devices (chained
// declustering) and Sample() walks the replica chain — primary first, then
// each replica in placement order — skipping devices the shared
// HealthMonitor has declared dead. Shard-level fault sites drive the
// monitor: shard.lost kills a device mid-placement (work fails over to the
// next replica, bit-identically, since every session binds the full graph),
// exchange.timeout triggers bounded hedged exchanges before unwinding as a
// Transient error, and shard.slow inflates exchange time, flagging the
// shard suspect. Failover order is a pure function of (partition, monitor
// state), so a seeded FaultPlan reproduces the same decisions every run.

#ifndef GSAMPLER_SHARD_SHARD_H_
#define GSAMPLER_SHARD_SHARD_H_

#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "core/engine.h"
#include "device/device.h"
#include "feature/hot_set_cache.h"
#include "feature/store.h"
#include "graph/graph.h"
#include "graph/partition.h"
#include "ha/health.h"

namespace gs::shard {

// One frontier hop's cross-shard traffic as seen by one shard.
struct HopRecord {
  int hop = 0;                 // hop index within the sample
  int64_t frontier_nodes = 0;  // deduplicated frontier size
  int64_t remote_nodes = 0;    // frontier nodes with remote adjacency
  int64_t bytes = 0;           // adjacency bytes pulled over the interconnect
  int64_t exchange_ns = 0;     // virtual time charged for the all-to-all
  int64_t hedges = 0;          // hedged re-issues of this hop's exchange
};

// Aggregated exchange counters (per shard, or group-wide).
struct ExchangeStats {
  int64_t samples = 0;
  int64_t hops = 0;
  int64_t frontier_nodes = 0;
  int64_t remote_nodes = 0;
  int64_t bytes = 0;
  int64_t exchange_ns = 0;
  int64_t hedges = 0;     // hedged exchange re-issues (timeouts + suspects)
  int64_t failovers = 0;  // samples served by a non-primary replica
  // Aggregate per hop index across samples (hop 0 = seeds, hop 1 = their
  // neighbors, ...): the per-hop exchange-bytes table the bench reports.
  std::vector<HopRecord> per_hop;

  void Add(const std::vector<HopRecord>& hops_taken);
  void Merge(const ExchangeStats& other);
  std::string ToString() const;
};

// Hop observer charging the cross-shard all-to-all. One instance per Sample
// call (it carries the per-call hop index), installed on the executing
// thread via core::HopObserverGuard. For every hop against the base graph
// it deduplicates the frontier, looks up each node's owner in the
// partition, sums the bytes of adjacency not hosted on the executing
// device, and records one kernel on the current stream whose only cost is
// those bytes at the profile's interconnect_ns_per_byte. Hops with no
// remote nodes charge nothing (no all-to-all is needed).
//
// With a HealthMonitor attached the exchange also runs the HA protocol:
// an injected exchange.timeout is absorbed by a hedged re-issue (a second
// all-to-all charged on the replica path) while the hedge budget lasts,
// then unwinds as fault::ExchangeTimeoutError; a suspect executing shard
// hedges proactively; shard.slow inflates the charge and flags the shard.
class FrontierExchange : public core::HopObserver {
 public:
  FrontierExchange(const graph::Partition& partition, int shard,
                   ha::HealthMonitor* monitor = nullptr, int max_hedges = 0)
      : partition_(&partition), shard_(shard), monitor_(monitor), max_hedges_(max_hedges) {}

  void OnHop(const sparse::Matrix& graph, const tensor::IdArray& frontier) override;

  // Per-hop records of the sample this instance observed.
  const std::vector<HopRecord>& hops() const { return hops_; }
  // Hedged re-issues across all hops of this sample.
  int64_t hedges() const { return hedges_; }

 private:
  const graph::Partition* partition_;
  int shard_;
  ha::HealthMonitor* monitor_;
  int max_hedges_;
  int64_t hedges_ = 0;
  std::vector<HopRecord> hops_;
};

struct ShardGroupOptions {
  int num_shards = 2;
  graph::PartitionKind partition = graph::PartitionKind::kEdgeCut;
  // Profile every shard device is created with (interconnect_ns_per_byte
  // prices the exchange).
  device::DeviceProfile profile = device::V100Sim();
  core::SamplerOptions sampler;
  // Feature serving (gs::feature): when true and the graph has features,
  // every shard gets its own hot-set cache over the shared feature store,
  // and GatherFeatures() gathers rows on the shard's device and clock.
  bool serve_features = false;
  // Per-shard cache capacity in feature rows; 0 sizes it to 10% of the
  // graph's nodes (floor 64).
  int64_t feature_cache_rows = 0;
  feature::Admission feature_admission = feature::Admission::kFrequencyEma;
  // High availability: replicas per shard (1 = no failover; r > 1 mirrors
  // each shard's segment onto r devices by chained declustering).
  int num_replicas = 1;
  // Health state-machine thresholds shared by every shard.
  ha::HealthOptions health;
  // Hedged exchange re-issues allowed per sample (timeout absorption and
  // proactive suspect hedging share the budget).
  int max_hedged_exchanges = 2;
};

// N complete sampling engines over one partitioned graph and one shared
// compiled plan. Construction compiles (or adopts) the plan, partitions the
// graph, creates one device per shard, and warms one session per shard —
// sequentially, so lazily cached structures on shared objects materialize
// race-free. After construction Sample() is const-safe from any number of
// threads; concurrent samples on one shard serialize onto that shard's
// virtual timeline (one device executes one kernel at a time), which is
// exactly the per-device capacity model the serving bench measures.
class ShardGroup {
 public:
  ShardGroup(const graph::Graph& graph, core::Program program,
             std::map<std::string, tensor::Tensor> tensors, ShardGroupOptions options);
  // Adopts an existing (possibly deserialized) plan instead of compiling.
  ShardGroup(const graph::Graph& graph, std::shared_ptr<core::CompiledPlan> plan,
             std::map<std::string, tensor::Tensor> tensors, ShardGroupOptions options);
  // Snapshot-pinning constructors (gs::dyn): the group holds the snapshot's
  // shared_ptr so the epoch outlives the store's later mutations. Sampling
  // is bit-identical to the same-epoch static-graph constructors.
  ShardGroup(std::shared_ptr<const graph::Snapshot> snapshot, core::Program program,
             std::map<std::string, tensor::Tensor> tensors, ShardGroupOptions options);
  ShardGroup(std::shared_ptr<const graph::Snapshot> snapshot,
             std::shared_ptr<core::CompiledPlan> plan,
             std::map<std::string, tensor::Tensor> tensors, ShardGroupOptions options);

  ShardGroup(const ShardGroup&) = delete;
  ShardGroup& operator=(const ShardGroup&) = delete;
  ~ShardGroup();

  int num_shards() const { return options_.num_shards; }
  int num_replicas() const { return options_.num_replicas; }
  const graph::Partition& partition() const { return *partition_; }
  // Shared per-shard health state machine (failover decisions, coverage).
  ha::HealthMonitor& monitor() const { return *monitor_; }
  const core::CompiledPlan& plan() const { return *plan_; }
  std::shared_ptr<core::CompiledPlan> plan_ptr() const { return plan_; }

  // Locality routing: the frontier's plurality home shard.
  int Route(const tensor::IdArray& frontier) const;

  // Samples `frontier` on `shard`'s device with the shared plan. Thread-safe
  // after construction; bit-identical to SamplerSession::SampleSeeded on a
  // single device with the same plan and seed. Per-hop exchange records are
  // folded into the shard's aggregate (and copied to `hops` if given).
  //
  // With num_replicas > 1 the call walks `shard`'s replica chain in
  // placement order, skipping devices the monitor holds dead (except
  // backoff-admitted probes) and failing over on device loss or transient
  // faults. Because every replica runs the same pure SampleSeeded, a
  // failed-over sample is bit-identical to the primary's. Throws
  // fault::TransientError when every admitted replica failed transiently
  // (the serving retry ladder re-resolves placement), or
  // fault::ShardUnavailableError when no replica admits work at all.
  std::vector<core::Value> Sample(int shard, const tensor::IdArray& frontier, uint64_t seed,
                                  std::vector<HopRecord>* hops = nullptr) const;

  // Sample on the frontier's home shard (locality-aware entry point).
  std::vector<core::Value> SampleRouted(const tensor::IdArray& frontier, uint64_t seed,
                                        std::vector<HopRecord>* hops = nullptr) const;

  // Gathers the feature rows for `ids` through `shard`'s hot-set cache, on
  // that shard's device and virtual clock. Bit-identical to an eager
  // per-node lookup regardless of cache state. Requires
  // ShardGroupOptions::serve_features and a graph with features.
  tensor::Tensor GatherFeatures(int shard, const tensor::IdArray& ids,
                                feature::GatherStats* stats = nullptr) const;
  // Null when the group was built without serve_features (or no features).
  const feature::FeatureStore* feature_store() const { return feature_store_.get(); }
  feature::HotSetCache* feature_cache(int shard) const;

  device::Device& device(int shard) const;
  core::SamplerSession& session(int shard) const;

  // Accumulated exchange traffic of one shard / all shards.
  ExchangeStats exchange_stats(int shard) const;
  ExchangeStats TotalExchange() const;
  // The shard device's default-stream counters (virtual clock, bytes).
  device::StreamCounters counters(int shard) const;

  std::string DebugString() const;

 private:
  void Init(const graph::Graph& graph, std::map<std::string, tensor::Tensor> tensors);

  ShardGroupOptions options_;
  // Pinned graph epoch (null for groups over a caller-owned static graph).
  // Declared before graph_ so graph_ may point into *snapshot_.
  std::shared_ptr<const graph::Snapshot> snapshot_;
  const graph::Graph* graph_;
  std::shared_ptr<core::CompiledPlan> plan_;
  std::unique_ptr<graph::Partition> partition_;
  std::unique_ptr<ha::HealthMonitor> monitor_;
  std::vector<std::unique_ptr<device::Device>> devices_;
  // Declared after devices_: each shard's cache holds backing pages on that
  // shard's allocator, so the caches must be destroyed first.
  std::unique_ptr<feature::FeatureStore> feature_store_;
  std::vector<std::unique_ptr<feature::HotSetCache>> feature_caches_;
  std::vector<std::unique_ptr<core::SamplerSession>> sessions_;
  mutable std::mutex stats_mutex_;
  mutable std::vector<ExchangeStats> exchange_;
};

}  // namespace gs::shard

#endif  // GSAMPLER_SHARD_SHARD_H_
