// gs::shard — multi-device sharded sampling with cross-shard frontier
// exchange.
//
// A ShardGroup partitions a graph across N simulated devices
// (graph::Partitioner) and runs the full sampling engine per shard: one
// device::Device (allocator + stream set) per shard, one SamplerSession per
// shard over a single shared frozen CompiledPlan. Each frontier hop
// executes locally; frontier nodes whose adjacency is owned by a remote
// shard are detected by a FrontierExchange observer, which charges one
// coalesced all-to-all per hop at the profile's interconnect_ns_per_byte —
// the shard-to-shard analog of the UVA PCIe charge.
//
// Cost-model tap, not a data-path fork: after the (simulated) exchange a
// shard holds exactly the adjacency the full matrix would give, so every
// shard session binds the full graph and the exchange only advances the
// shard's virtual clock and counters. Sharded sampling is therefore
// bit-identical to single-device SampleSeeded with the same plan and seed —
// the property the oracle test checks — while capacity (requests per
// simulated second) scales with the shard count because each shard's work
// lands on its own timeline.

#ifndef GSAMPLER_SHARD_SHARD_H_
#define GSAMPLER_SHARD_SHARD_H_

#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "core/engine.h"
#include "device/device.h"
#include "feature/hot_set_cache.h"
#include "feature/store.h"
#include "graph/graph.h"
#include "graph/partition.h"

namespace gs::shard {

// One frontier hop's cross-shard traffic as seen by one shard.
struct HopRecord {
  int hop = 0;                 // hop index within the sample
  int64_t frontier_nodes = 0;  // deduplicated frontier size
  int64_t remote_nodes = 0;    // frontier nodes with remote adjacency
  int64_t bytes = 0;           // adjacency bytes pulled over the interconnect
  int64_t exchange_ns = 0;     // virtual time charged for the all-to-all
};

// Aggregated exchange counters (per shard, or group-wide).
struct ExchangeStats {
  int64_t samples = 0;
  int64_t hops = 0;
  int64_t frontier_nodes = 0;
  int64_t remote_nodes = 0;
  int64_t bytes = 0;
  int64_t exchange_ns = 0;
  // Aggregate per hop index across samples (hop 0 = seeds, hop 1 = their
  // neighbors, ...): the per-hop exchange-bytes table the bench reports.
  std::vector<HopRecord> per_hop;

  void Add(const std::vector<HopRecord>& hops_taken);
  void Merge(const ExchangeStats& other);
  std::string ToString() const;
};

// Hop observer charging the cross-shard all-to-all. One instance per Sample
// call (it carries the per-call hop index), installed on the executing
// thread via core::HopObserverGuard. For every hop against the base graph
// it deduplicates the frontier, looks up each node's owner in the
// partition, sums the remote nodes' adjacency bytes, and records one kernel
// on the current stream whose only cost is those bytes at the profile's
// interconnect_ns_per_byte. Hops with no remote nodes charge nothing (no
// all-to-all is needed).
class FrontierExchange : public core::HopObserver {
 public:
  FrontierExchange(const graph::Partition& partition, int shard)
      : partition_(&partition), shard_(shard) {}

  void OnHop(const sparse::Matrix& graph, const tensor::IdArray& frontier) override;

  // Per-hop records of the sample this instance observed.
  const std::vector<HopRecord>& hops() const { return hops_; }

 private:
  const graph::Partition* partition_;
  int shard_;
  std::vector<HopRecord> hops_;
};

struct ShardGroupOptions {
  int num_shards = 2;
  graph::PartitionKind partition = graph::PartitionKind::kEdgeCut;
  // Profile every shard device is created with (interconnect_ns_per_byte
  // prices the exchange).
  device::DeviceProfile profile = device::V100Sim();
  core::SamplerOptions sampler;
  // Feature serving (gs::feature): when true and the graph has features,
  // every shard gets its own hot-set cache over the shared feature store,
  // and GatherFeatures() gathers rows on the shard's device and clock.
  bool serve_features = false;
  // Per-shard cache capacity in feature rows; 0 sizes it to 10% of the
  // graph's nodes (floor 64).
  int64_t feature_cache_rows = 0;
  feature::Admission feature_admission = feature::Admission::kFrequencyEma;
};

// N complete sampling engines over one partitioned graph and one shared
// compiled plan. Construction compiles (or adopts) the plan, partitions the
// graph, creates one device per shard, and warms one session per shard —
// sequentially, so lazily cached structures on shared objects materialize
// race-free. After construction Sample() is const-safe from any number of
// threads; concurrent samples on one shard serialize onto that shard's
// virtual timeline (one device executes one kernel at a time), which is
// exactly the per-device capacity model the serving bench measures.
class ShardGroup {
 public:
  ShardGroup(const graph::Graph& graph, core::Program program,
             std::map<std::string, tensor::Tensor> tensors, ShardGroupOptions options);
  // Adopts an existing (possibly deserialized) plan instead of compiling.
  ShardGroup(const graph::Graph& graph, std::shared_ptr<core::CompiledPlan> plan,
             std::map<std::string, tensor::Tensor> tensors, ShardGroupOptions options);

  ShardGroup(const ShardGroup&) = delete;
  ShardGroup& operator=(const ShardGroup&) = delete;
  ~ShardGroup();

  int num_shards() const { return options_.num_shards; }
  const graph::Partition& partition() const { return *partition_; }
  const core::CompiledPlan& plan() const { return *plan_; }
  std::shared_ptr<core::CompiledPlan> plan_ptr() const { return plan_; }

  // Locality routing: the frontier's plurality home shard.
  int Route(const tensor::IdArray& frontier) const;

  // Samples `frontier` on `shard`'s device with the shared plan. Thread-safe
  // after construction; bit-identical to SamplerSession::SampleSeeded on a
  // single device with the same plan and seed. Per-hop exchange records are
  // folded into the shard's aggregate (and copied to `hops` if given).
  std::vector<core::Value> Sample(int shard, const tensor::IdArray& frontier, uint64_t seed,
                                  std::vector<HopRecord>* hops = nullptr) const;

  // Sample on the frontier's home shard (locality-aware entry point).
  std::vector<core::Value> SampleRouted(const tensor::IdArray& frontier, uint64_t seed,
                                        std::vector<HopRecord>* hops = nullptr) const;

  // Gathers the feature rows for `ids` through `shard`'s hot-set cache, on
  // that shard's device and virtual clock. Bit-identical to an eager
  // per-node lookup regardless of cache state. Requires
  // ShardGroupOptions::serve_features and a graph with features.
  tensor::Tensor GatherFeatures(int shard, const tensor::IdArray& ids,
                                feature::GatherStats* stats = nullptr) const;
  // Null when the group was built without serve_features (or no features).
  const feature::FeatureStore* feature_store() const { return feature_store_.get(); }
  feature::HotSetCache* feature_cache(int shard) const;

  device::Device& device(int shard) const;
  core::SamplerSession& session(int shard) const;

  // Accumulated exchange traffic of one shard / all shards.
  ExchangeStats exchange_stats(int shard) const;
  ExchangeStats TotalExchange() const;
  // The shard device's default-stream counters (virtual clock, bytes).
  device::StreamCounters counters(int shard) const;

  std::string DebugString() const;

 private:
  void Init(const graph::Graph& graph, std::map<std::string, tensor::Tensor> tensors);

  ShardGroupOptions options_;
  const graph::Graph* graph_;
  std::shared_ptr<core::CompiledPlan> plan_;
  std::unique_ptr<graph::Partition> partition_;
  std::vector<std::unique_ptr<device::Device>> devices_;
  // Declared after devices_: each shard's cache holds backing pages on that
  // shard's allocator, so the caches must be destroyed first.
  std::unique_ptr<feature::FeatureStore> feature_store_;
  std::vector<std::unique_ptr<feature::HotSetCache>> feature_caches_;
  std::vector<std::unique_ptr<core::SamplerSession>> sessions_;
  mutable std::mutex stats_mutex_;
  mutable std::vector<ExchangeStats> exchange_;
};

}  // namespace gs::shard

#endif  // GSAMPLER_SHARD_SHARD_H_
