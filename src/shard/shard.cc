#include "shard/shard.h"

#include <algorithm>
#include <sstream>

#include "common/error.h"
#include "device/stream.h"
#include "fault/fault.h"
#include "fault/status.h"

namespace gs::shard {
namespace {

// Small representative frontier for per-shard warmup (same policy as the
// serving tier): train ids when present, else the first node ids.
tensor::IdArray WarmupFrontier(const graph::Graph& graph) {
  const tensor::IdArray& train = graph.train_ids();
  const int64_t pool = train.size() > 0 ? train.size() : std::max<int64_t>(graph.num_nodes(), 1);
  const int64_t n = std::min<int64_t>(32, pool);
  std::vector<int32_t> ids(static_cast<size_t>(n));
  for (int64_t i = 0; i < n; ++i) {
    ids[static_cast<size_t>(i)] =
        train.size() > 0 ? train[i]
                         : static_cast<int32_t>(i % std::max<int64_t>(graph.num_nodes(), 1));
  }
  return tensor::IdArray::FromVector(ids);
}

}  // namespace

void ExchangeStats::Add(const std::vector<HopRecord>& hops_taken) {
  samples += 1;
  if (per_hop.size() < hops_taken.size()) {
    per_hop.resize(hops_taken.size());
  }
  for (size_t i = 0; i < hops_taken.size(); ++i) {
    const HopRecord& h = hops_taken[i];
    hops += 1;
    frontier_nodes += h.frontier_nodes;
    remote_nodes += h.remote_nodes;
    bytes += h.bytes;
    exchange_ns += h.exchange_ns;
    hedges += h.hedges;
    HopRecord& agg = per_hop[i];
    agg.hop = static_cast<int>(i);
    agg.frontier_nodes += h.frontier_nodes;
    agg.remote_nodes += h.remote_nodes;
    agg.bytes += h.bytes;
    agg.exchange_ns += h.exchange_ns;
    agg.hedges += h.hedges;
  }
}

void ExchangeStats::Merge(const ExchangeStats& other) {
  samples += other.samples;
  hops += other.hops;
  frontier_nodes += other.frontier_nodes;
  remote_nodes += other.remote_nodes;
  bytes += other.bytes;
  exchange_ns += other.exchange_ns;
  hedges += other.hedges;
  failovers += other.failovers;
  if (per_hop.size() < other.per_hop.size()) {
    per_hop.resize(other.per_hop.size());
  }
  for (size_t i = 0; i < other.per_hop.size(); ++i) {
    HopRecord& agg = per_hop[i];
    agg.hop = static_cast<int>(i);
    agg.frontier_nodes += other.per_hop[i].frontier_nodes;
    agg.remote_nodes += other.per_hop[i].remote_nodes;
    agg.bytes += other.per_hop[i].bytes;
    agg.exchange_ns += other.per_hop[i].exchange_ns;
    agg.hedges += other.per_hop[i].hedges;
  }
}

std::string ExchangeStats::ToString() const {
  std::ostringstream out;
  out << "samples=" << samples << " hops=" << hops << " frontier_nodes=" << frontier_nodes
      << " remote_nodes=" << remote_nodes << " bytes=" << bytes
      << " exchange_us=" << exchange_ns / 1000 << " hedges=" << hedges
      << " failovers=" << failovers;
  return out.str();
}

void FrontierExchange::OnHop(const sparse::Matrix& graph, const tensor::IdArray& frontier) {
  (void)graph;  // the partition already knows every node's adjacency size
  const int64_t n = partition_->graph().num_nodes();
  HopRecord record;
  record.hop = static_cast<int>(hops_.size());

  // Deduplicate folded global ids: a node appearing twice in the frontier
  // ships its adjacency once. Labeled super-batch ids (b*N + v) fold with
  // modulo; negative ids are walk dead-end markers.
  std::vector<int32_t> ids;
  ids.reserve(static_cast<size_t>(frontier.size()));
  for (int64_t i = 0; i < frontier.size(); ++i) {
    const int32_t v = frontier[i];
    if (v < 0) {
      continue;
    }
    ids.push_back(static_cast<int32_t>(v % n));
  }
  std::sort(ids.begin(), ids.end());
  ids.erase(std::unique(ids.begin(), ids.end()), ids.end());
  record.frontier_nodes = static_cast<int64_t>(ids.size());

  for (const int32_t v : ids) {
    // Remote means "no replica of the owner's segment lives on the
    // executing device"; with one replica this reduces to OwnerOf != shard.
    if (!partition_->Hosts(shard_, partition_->OwnerOf(v))) {
      record.remote_nodes += 1;
      record.bytes += partition_->AdjBytes(v);
    }
  }

  if (record.remote_nodes > 0) {
    // One coalesced all-to-all for the hop: every peer's contribution moves
    // concurrently, so the charge is the byte total at the interconnect
    // rate (plus the launch overhead any kernel pays).
    device::Stream& stream = device::Current().stream();
    const int64_t before = stream.now_ns();
    {
      device::KernelScope kernel(stream);
      kernel.Finish({.parallel_items = record.remote_nodes,
                     .interconnect_bytes = record.bytes});
    }

    // HA protocol for the exchange. An injected timeout is absorbed by a
    // hedged re-issue — the same bytes charged again, modeling the replica
    // path answering — until the per-sample hedge budget runs out, at which
    // point it unwinds as a Transient error for the retry ladder. A suspect
    // executing shard hedges proactively (tail-latency insurance), sharing
    // the same budget. Hedges only charge time, so outputs stay
    // bit-identical whether or not a hedge fired.
    bool hedge = false;
    if (fault::Injected(fault::Site::kExchangeTimeout)) {
      if (monitor_ != nullptr) {
        monitor_->ReportExchangeTimeout(shard_);
      }
      if (hedges_ >= max_hedges_) {
        record.exchange_ns = stream.now_ns() - before;
        hops_.push_back(record);
        throw fault::ExchangeTimeoutError("cross-shard exchange timed out on shard " +
                                          std::to_string(shard_) +
                                          " with hedge budget exhausted");
      }
      hedge = true;
    } else if (monitor_ != nullptr && hedges_ < max_hedges_ &&
               monitor_->state(shard_) == ha::ShardHealth::kSuspect) {
      hedge = true;
    }
    if (hedge) {
      device::KernelScope kernel(stream);
      kernel.Finish({.parallel_items = record.remote_nodes,
                     .interconnect_bytes = record.bytes});
      record.hedges += 1;
      ++hedges_;
    }

    // Gray slowness: the shard answers, late. Charge the extra time and
    // feed the monitor's suspect machinery.
    const double slow = fault::SlowShardMultiplier();
    if (slow > 1.0) {
      device::KernelScope kernel(stream);
      kernel.Finish({.parallel_items = record.remote_nodes,
                     .interconnect_bytes = static_cast<int64_t>(
                         static_cast<double>(record.bytes) * (slow - 1.0))});
      if (monitor_ != nullptr) {
        monitor_->ReportSlowShard(shard_);
      }
    }
    record.exchange_ns = stream.now_ns() - before;
  }
  hops_.push_back(record);
}

ShardGroup::ShardGroup(const graph::Graph& graph, core::Program program,
                       std::map<std::string, tensor::Tensor> tensors, ShardGroupOptions options)
    : options_(std::move(options)),
      graph_(&graph),
      plan_(std::make_shared<core::CompiledPlan>(std::move(program), options_.sampler)) {
  Init(graph, std::move(tensors));
}

ShardGroup::ShardGroup(const graph::Graph& graph, std::shared_ptr<core::CompiledPlan> plan,
                       std::map<std::string, tensor::Tensor> tensors, ShardGroupOptions options)
    : options_(std::move(options)), graph_(&graph), plan_(std::move(plan)) {
  GS_CHECK(plan_ != nullptr) << "ShardGroup needs a plan";
  Init(graph, std::move(tensors));
}

ShardGroup::ShardGroup(std::shared_ptr<const graph::Snapshot> snapshot, core::Program program,
                       std::map<std::string, tensor::Tensor> tensors, ShardGroupOptions options)
    : options_(std::move(options)),
      snapshot_(std::move(snapshot)),
      graph_(&snapshot_->graph()),
      plan_(std::make_shared<core::CompiledPlan>(std::move(program), options_.sampler)) {
  Init(*graph_, std::move(tensors));
}

ShardGroup::ShardGroup(std::shared_ptr<const graph::Snapshot> snapshot,
                       std::shared_ptr<core::CompiledPlan> plan,
                       std::map<std::string, tensor::Tensor> tensors, ShardGroupOptions options)
    : options_(std::move(options)),
      snapshot_(std::move(snapshot)),
      graph_(&snapshot_->graph()),
      plan_(std::move(plan)) {
  GS_CHECK(plan_ != nullptr) << "ShardGroup needs a plan";
  Init(*graph_, std::move(tensors));
}

ShardGroup::~ShardGroup() = default;

void ShardGroup::Init(const graph::Graph& graph, std::map<std::string, tensor::Tensor> tensors) {
  GS_CHECK_GE(options_.num_shards, 1);
  GS_CHECK_LE(options_.num_shards, fault::kMaxShards)
      << "ShardGroup supports at most " << fault::kMaxShards << " shards";
  GS_CHECK_GE(options_.num_replicas, 1);
  GS_CHECK_LE(options_.num_replicas, options_.num_shards)
      << "more replicas than shard devices";
  partition_ = std::make_unique<graph::Partition>(graph::Partitioner::Build(
      graph, options_.partition, options_.num_shards, options_.num_replicas));
  monitor_ = std::make_unique<ha::HealthMonitor>(options_.num_shards, options_.health);
  exchange_.resize(static_cast<size_t>(options_.num_shards));

  const bool features = options_.serve_features && graph.features().defined();
  if (features) {
    feature_store_ = std::make_unique<feature::FeatureStore>(graph.features());
  }
  const int64_t cache_rows = options_.feature_cache_rows > 0
                                 ? options_.feature_cache_rows
                                 : std::max<int64_t>(graph.num_nodes() / 10, 64);

  const tensor::IdArray warmup = WarmupFrontier(graph);
  devices_.reserve(static_cast<size_t>(options_.num_shards));
  sessions_.reserve(static_cast<size_t>(options_.num_shards));
  for (int s = 0; s < options_.num_shards; ++s) {
    devices_.push_back(std::make_unique<device::Device>(options_.profile));
    // Warm sequentially under the shard's device: shard 0 calibrates and
    // freezes the shared plan (deterministically — calibration ranks
    // candidates on the model clock), later shards adopt it; each shard's
    // pre-computed values land in its own allocator.
    device::ThreadDeviceGuard guard(*devices_[static_cast<size_t>(s)]);
    if (features) {
      // Built under the guard so the cache's backing pages land on — and
      // join the OOM ladder of — this shard's allocator.
      feature_caches_.push_back(std::make_unique<feature::HotSetCache>(feature::HotSetCacheOptions{
          .capacity = cache_rows,
          .admission = options_.feature_admission,
          .entry_bytes = feature_store_->row_bytes(),
          .register_pressure_handler = true,
      }));
    }
    sessions_.push_back(std::make_unique<core::SamplerSession>(plan_, graph, tensors));
    sessions_.back()->Warmup(warmup);
  }
}

int ShardGroup::Route(const tensor::IdArray& frontier) const {
  return partition_->HomeShard(frontier.data(), frontier.size());
}

std::vector<core::Value> ShardGroup::Sample(int shard, const tensor::IdArray& frontier,
                                            uint64_t seed, std::vector<HopRecord>* hops) const {
  GS_CHECK(shard >= 0 && shard < options_.num_shards) << "shard " << shard << " out of range";
  // Walk the shard's replica chain in placement order (primary first).
  // Every replica binds the full graph and SampleSeeded is pure, so where
  // the sample lands never changes what it returns — failover is invisible
  // in the outputs and visible only in the per-device timelines and the
  // failover counter. The chain order is a pure function of the partition,
  // so a seeded FaultPlan replays identical decisions.
  bool transient_failure = false;
  std::string last_error;
  for (int r = 0; r < options_.num_replicas; ++r) {
    const int exec = partition_->ReplicaDevice(shard, r);
    if (!monitor_->AdmitWork(exec)) {
      continue;  // dead and not yet due for a backoff probe
    }
    // Pin this thread to the executing device so kernels advance its
    // timeline and allocations draw from its capacity; the ShardScope
    // routes shard-qualified fault clauses at this placement.
    device::ThreadDeviceGuard device_guard(*devices_[static_cast<size_t>(exec)]);
    fault::ShardScope fault_shard(exec);
    if (fault::Injected(fault::Site::kShardLost)) {
      devices_[static_cast<size_t>(exec)]->MarkLost();
      monitor_->ReportDeviceLost(exec);
      last_error = "shard " + std::to_string(exec) + " lost";
      continue;
    }
    FrontierExchange exchange(*partition_, exec, monitor_.get(),
                              options_.max_hedged_exchanges);
    core::HopObserverGuard observer_guard(exchange);
    const int64_t stuck_before =
        devices_[static_cast<size_t>(exec)]->default_stream().counters().stuck_kernels;
    try {
      std::vector<core::Value> outputs =
          sessions_[static_cast<size_t>(exec)]->SampleSeeded(frontier, seed);
      monitor_->ReportSuccess(exec);
      if (devices_[static_cast<size_t>(exec)]->lost()) {
        devices_[static_cast<size_t>(exec)]->Revive();  // probe made it through
      }
      {
        std::lock_guard<std::mutex> lock(stats_mutex_);
        ExchangeStats& stats = exchange_[static_cast<size_t>(shard)];
        stats.Add(exchange.hops());
        if (r > 0) {
          stats.failovers += 1;
        }
      }
      if (hops != nullptr) {
        *hops = exchange.hops();
      }
      return outputs;
    } catch (const fault::TransientError& e) {
      // Injected kernel faults, watchdog-cancelled batches, and exchange
      // timeouts past the hedge budget all land here; feed the monitor and
      // try the next replica.
      const int64_t stuck_after =
          devices_[static_cast<size_t>(exec)]->default_stream().counters().stuck_kernels;
      if (stuck_after > stuck_before) {
        monitor_->ReportStuckKernels(exec, stuck_after - stuck_before);
      } else {
        monitor_->ReportTransient(exec);
      }
      transient_failure = true;
      last_error = e.what();
      continue;
    }
  }
  if (transient_failure) {
    // At least one replica answered (transiently); the caller's retry
    // ladder may re-resolve placement and succeed.
    throw fault::TransientError("shard " + std::to_string(shard) +
                                " failed on every admitted replica: " + last_error);
  }
  throw fault::ShardUnavailableError(
      "shard " + std::to_string(shard) + " has no live replica" +
      (last_error.empty() ? "" : " (" + last_error + ")"));
}

std::vector<core::Value> ShardGroup::SampleRouted(const tensor::IdArray& frontier, uint64_t seed,
                                                  std::vector<HopRecord>* hops) const {
  return Sample(Route(frontier), frontier, seed, hops);
}

tensor::Tensor ShardGroup::GatherFeatures(int shard, const tensor::IdArray& ids,
                                          feature::GatherStats* stats) const {
  GS_CHECK(shard >= 0 && shard < options_.num_shards) << "shard " << shard << " out of range";
  GS_CHECK(feature_store_ != nullptr)
      << "ShardGroup built without serve_features (or the graph has no features)";
  device::ThreadDeviceGuard guard(*devices_[static_cast<size_t>(shard)]);
  return feature_store_->Gather(ids, feature_cache(shard), stats);
}

feature::HotSetCache* ShardGroup::feature_cache(int shard) const {
  GS_CHECK(shard >= 0 && shard < options_.num_shards) << "shard " << shard << " out of range";
  return feature_caches_.empty() ? nullptr : feature_caches_[static_cast<size_t>(shard)].get();
}

device::Device& ShardGroup::device(int shard) const {
  GS_CHECK(shard >= 0 && shard < options_.num_shards) << "shard " << shard << " out of range";
  return *devices_[static_cast<size_t>(shard)];
}

core::SamplerSession& ShardGroup::session(int shard) const {
  GS_CHECK(shard >= 0 && shard < options_.num_shards) << "shard " << shard << " out of range";
  return *sessions_[static_cast<size_t>(shard)];
}

ExchangeStats ShardGroup::exchange_stats(int shard) const {
  GS_CHECK(shard >= 0 && shard < options_.num_shards) << "shard " << shard << " out of range";
  std::lock_guard<std::mutex> lock(stats_mutex_);
  return exchange_[static_cast<size_t>(shard)];
}

ExchangeStats ShardGroup::TotalExchange() const {
  std::lock_guard<std::mutex> lock(stats_mutex_);
  ExchangeStats total;
  for (const ExchangeStats& stats : exchange_) {
    total.Merge(stats);
  }
  return total;
}

device::StreamCounters ShardGroup::counters(int shard) const {
  return device(shard).default_stream().counters();
}

std::string ShardGroup::DebugString() const {
  std::ostringstream out;
  out << "ShardGroup(" << partition_->DebugString();
  for (int s = 0; s < options_.num_shards; ++s) {
    const device::StreamCounters c = counters(s);
    out << ", s" << s << "={kernels=" << c.kernels_launched
        << " virtual_us=" << c.virtual_ns / 1000
        << " interconnect_bytes=" << c.interconnect_bytes << "}";
  }
  out << ")";
  return out.str();
}

}  // namespace gs::shard
