#include "common/sampling.h"

#include <algorithm>
#include <cmath>
#include <queue>

#include "common/error.h"

namespace gs {

void SampleUniformWithoutReplacement(int64_t n, int64_t k, Rng& rng, std::vector<int32_t>& out) {
  GS_CHECK_GE(n, 0);
  GS_CHECK_GE(k, 0);
  if (k >= n) {
    for (int64_t i = 0; i < n; ++i) {
      out.push_back(static_cast<int32_t>(i));
    }
    return;
  }
  // Floyd's algorithm: k iterations, O(k) expected set operations. For the
  // small k typical of fanouts we use a linear-scan membership test over the
  // freshly appended tail, which beats hashing for k <= ~64.
  const size_t base = out.size();
  for (int64_t j = n - k; j < n; ++j) {
    const int32_t t = static_cast<int32_t>(rng.UniformInt(static_cast<uint64_t>(j + 1)));
    bool seen = false;
    for (size_t i = base; i < out.size(); ++i) {
      if (out[i] == t) {
        seen = true;
        break;
      }
    }
    out.push_back(seen ? static_cast<int32_t>(j) : t);
  }
}

void SampleWeightedWithoutReplacement(std::span<const float> weights, int64_t k, Rng& rng,
                                      std::vector<int32_t>& out) {
  GS_CHECK_GE(k, 0);
  const int64_t n = static_cast<int64_t>(weights.size());
  if (k <= 0 || n == 0) {
    return;
  }
  // Efraimidis-Spirakis: each item draws key u^(1/w) (equivalently
  // log(u)/w); the k largest keys form a without-replacement sample with the
  // desired inclusion behaviour. Zero weights get -inf keys.
  std::vector<std::pair<double, int32_t>> keys;
  keys.reserve(static_cast<size_t>(n));
  int64_t positive = 0;
  for (int64_t i = 0; i < n; ++i) {
    const float w = weights[static_cast<size_t>(i)];
    GS_CHECK_GE(w, 0.0f) << "negative sampling weight at index " << i;
    if (w > 0.0f) {
      double u = rng.Uniform();
      if (u <= 0.0) {
        u = 0x1.0p-53;
      }
      keys.emplace_back(std::log(u) / static_cast<double>(w), static_cast<int32_t>(i));
      ++positive;
    }
  }
  const int64_t take = std::min<int64_t>(k, positive);
  if (take == 0) {
    return;
  }
  auto mid = keys.begin() + static_cast<ptrdiff_t>(take);
  std::nth_element(keys.begin(), mid - 1, keys.end(),
                   [](const auto& a, const auto& b) { return a.first > b.first; });
  for (int64_t i = 0; i < take; ++i) {
    out.push_back(keys[static_cast<size_t>(i)].second);
  }
}

int32_t PickWeightedResidual(std::span<const float> weights, double r) {
  // Floating-point cancellation can leave r > 0 after the whole scan (the
  // sequentially rounded subtraction sum can fall short of the rounded
  // total r was scaled by), and r can reach <= 0 exactly at a zero-weight
  // entry. Both corners must resolve to an item with positive probability,
  // so only positive-weight indices are ever returned.
  int32_t last_positive = -1;
  for (size_t i = 0; i < weights.size(); ++i) {
    if (weights[i] <= 0.0f) {
      continue;
    }
    last_positive = static_cast<int32_t>(i);
    r -= weights[i];
    if (r <= 0.0) {
      return last_positive;
    }
  }
  return last_positive;
}

int32_t SampleWeightedOne(std::span<const float> weights, Rng& rng) {
  double total = 0.0;
  for (float w : weights) {
    total += w;
  }
  if (total <= 0.0) {
    return -1;
  }
  return PickWeightedResidual(weights, rng.Uniform() * total);
}

AliasTable::AliasTable(std::span<const float> weights) {
  const int64_t n = static_cast<int64_t>(weights.size());
  if (n == 0) {
    return;
  }
  double total = 0.0;
  for (float w : weights) {
    GS_CHECK_GE(w, 0.0f);
    total += w;
  }
  if (total <= 0.0) {
    return;
  }
  prob_.resize(static_cast<size_t>(n));
  alias_.resize(static_cast<size_t>(n), 0);
  std::vector<double> scaled(static_cast<size_t>(n));
  for (int64_t i = 0; i < n; ++i) {
    scaled[static_cast<size_t>(i)] = static_cast<double>(weights[static_cast<size_t>(i)]) *
                                     static_cast<double>(n) / total;
  }
  std::vector<int32_t> small;
  std::vector<int32_t> large;
  for (int64_t i = 0; i < n; ++i) {
    (scaled[static_cast<size_t>(i)] < 1.0 ? small : large).push_back(static_cast<int32_t>(i));
  }
  while (!small.empty() && !large.empty()) {
    const int32_t s = small.back();
    small.pop_back();
    const int32_t l = large.back();
    large.pop_back();
    prob_[static_cast<size_t>(s)] = static_cast<float>(scaled[static_cast<size_t>(s)]);
    alias_[static_cast<size_t>(s)] = l;
    scaled[static_cast<size_t>(l)] -= 1.0 - scaled[static_cast<size_t>(s)];
    (scaled[static_cast<size_t>(l)] < 1.0 ? small : large).push_back(l);
  }
  for (int32_t rest : small) {
    prob_[static_cast<size_t>(rest)] = 1.0f;
  }
  for (int32_t rest : large) {
    prob_[static_cast<size_t>(rest)] = 1.0f;
  }
}

int32_t AliasTable::Sample(Rng& rng) const {
  if (prob_.empty()) {
    return -1;
  }
  const uint64_t slot = rng.UniformInt(prob_.size());
  const float u = rng.UniformF();
  return u < prob_[slot] ? static_cast<int32_t>(slot) : alias_[slot];
}

}  // namespace gs
