#include "common/rng.h"

#include <cmath>

#include "common/error.h"

namespace gs {
namespace {

// SplitMix64: used only to expand seeds into xoshiro state.
uint64_t SplitMix64(uint64_t& x) {
  x += 0x9E3779B97F4A7C15ull;
  uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& word : state_) {
    word = SplitMix64(sm);
  }
}

Rng::Rng(const uint64_t state[4]) {
  for (int i = 0; i < 4; ++i) {
    state_[i] = state[i];
  }
}

Rng Rng::Fork(uint64_t stream) const {
  // Mixes the stream id into a fresh seed derived from the current state
  // (without advancing it), yielding independent substreams.
  uint64_t sm = state_[0] ^ Rotl(state_[3], 17) ^ (stream * 0xD1B54A32D192ED03ull + 1);
  uint64_t fresh[4];
  for (auto& word : fresh) {
    word = SplitMix64(sm);
  }
  return Rng(fresh);
}

uint64_t Rng::NextU64() {
  // xoshiro256**
  const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

double Rng::Uniform() { return static_cast<double>(NextU64() >> 11) * 0x1.0p-53; }

float Rng::UniformF() { return static_cast<float>(NextU64() >> 40) * 0x1.0p-24f; }

uint64_t Rng::UniformInt(uint64_t bound) {
  GS_CHECK_GT(bound, 0u) << "UniformInt bound must be positive";
  // Lemire's nearly-divisionless bounded generation.
  uint64_t x = NextU64();
  __uint128_t m = static_cast<__uint128_t>(x) * static_cast<__uint128_t>(bound);
  uint64_t low = static_cast<uint64_t>(m);
  if (low < bound) {
    const uint64_t threshold = (0u - bound) % bound;
    while (low < threshold) {
      x = NextU64();
      m = static_cast<__uint128_t>(x) * static_cast<__uint128_t>(bound);
      low = static_cast<uint64_t>(m);
    }
  }
  return static_cast<uint64_t>(m >> 64);
}

double Rng::Gaussian() {
  // Box-Muller; discards the second variate for simplicity.
  double u1 = Uniform();
  double u2 = Uniform();
  if (u1 <= 0.0) {
    u1 = 0x1.0p-53;
  }
  return std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * M_PI * u2);
}

}  // namespace gs
