// Low-level sampling primitives shared by the sparse kernels and the
// baseline samplers.
//
// These mirror the device-side building blocks of GPU sampling systems:
//  - uniform without-replacement selection (Floyd / partial Fisher-Yates),
//  - weighted without-replacement selection (Efraimidis-Spirakis keys),
//  - alias tables for O(1) biased with-replacement draws (SkyWalker's core).

#ifndef GSAMPLER_COMMON_SAMPLING_H_
#define GSAMPLER_COMMON_SAMPLING_H_

#include <cstdint>
#include <span>
#include <vector>

#include "common/rng.h"

namespace gs {

// Selects k distinct indices uniformly from [0, n) and appends them to `out`.
// If k >= n appends all of [0, n). Order of the selected indices is
// unspecified but deterministic for a given rng state.
void SampleUniformWithoutReplacement(int64_t n, int64_t k, Rng& rng, std::vector<int32_t>& out);

// Selects k distinct indices from [0, weights.size()) with probability
// proportional to `weights` (without replacement), appending to `out`.
// Zero-weight entries are never selected; if fewer than k entries have
// positive weight, all positive-weight entries are selected. Weights must be
// non-negative.
void SampleWeightedWithoutReplacement(std::span<const float> weights, int64_t k, Rng& rng,
                                      std::vector<int32_t>& out);

// Selects one index in [0, weights.size()) with probability proportional to
// `weights` (linear scan; used for single draws on short rows). Returns -1 if
// the total weight is zero. Zero-weight entries are never selected.
int32_t SampleWeightedOne(std::span<const float> weights, Rng& rng);

// Deterministic core of SampleWeightedOne: walks the inverse CDF for a
// residual r = u * sum(weights), u in [0, 1). Exposed so tests can drive the
// floating-point cancellation corner directly: sequential subtraction of the
// weights can leave r > 0 even when r >= the mathematically exact total, and
// that fallthrough must land on the last *positive-weight* index — never on
// a zero-weight tail entry. Returns -1 when no weight is positive.
int32_t PickWeightedResidual(std::span<const float> weights, double r);

// Walker alias table for O(1) biased sampling with replacement.
class AliasTable {
 public:
  AliasTable() = default;

  // Builds the table from non-negative weights. Empty or all-zero input
  // leaves the table empty (Sample returns -1).
  explicit AliasTable(std::span<const float> weights);

  int64_t size() const { return static_cast<int64_t>(prob_.size()); }
  bool empty() const { return prob_.empty(); }

  // Draws one index with probability proportional to the build weights.
  int32_t Sample(Rng& rng) const;

 private:
  std::vector<float> prob_;
  std::vector<int32_t> alias_;
};

}  // namespace gs

#endif  // GSAMPLER_COMMON_SAMPLING_H_
