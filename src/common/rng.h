// Deterministic random number generation.
//
// Every source of randomness in gSampler flows through gs::Rng so that runs
// are reproducible: tests pin seeds, and experiments derive per-(epoch,
// batch) streams with Fork(). The generator is xoshiro256** seeded via
// SplitMix64, which is fast, high quality, and trivially forkable — the same
// properties the paper's GPU kernels get from Philox-style counter RNGs.

#ifndef GSAMPLER_COMMON_RNG_H_
#define GSAMPLER_COMMON_RNG_H_

#include <cstdint>

namespace gs {

class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ull);

  // Derives an independent stream; identical (seed, stream) pairs always
  // produce identical sequences.
  Rng Fork(uint64_t stream) const;

  uint64_t NextU64();
  uint32_t NextU32() { return static_cast<uint32_t>(NextU64() >> 32); }

  // Uniform double in [0, 1).
  double Uniform();
  // Uniform float in [0, 1).
  float UniformF();
  // Uniform integer in [0, bound). bound must be > 0.
  uint64_t UniformInt(uint64_t bound);
  // Standard normal via Box-Muller (unbuffered; fine for feature synthesis).
  double Gaussian();

 private:
  explicit Rng(const uint64_t state[4]);

  uint64_t state_[4];
};

}  // namespace gs

#endif  // GSAMPLER_COMMON_RNG_H_
