#include "common/logging.h"

#include <atomic>
#include <cstring>

namespace gs {
namespace {

std::atomic<int> g_log_level{static_cast<int>(LogLevel::kWarning)};

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}

// Trims a path down to its basename for compact log prefixes.
const char* Basename(const char* path) {
  const char* slash = std::strrchr(path, '/');
  return slash != nullptr ? slash + 1 : path;
}

}  // namespace

LogLevel GetLogLevel() { return static_cast<LogLevel>(g_log_level.load(std::memory_order_relaxed)); }

void SetLogLevel(LogLevel level) {
  g_log_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

namespace {
thread_local std::string t_log_tag;
}  // namespace

void SetLogTag(const std::string& tag) { t_log_tag = tag; }

const std::string& GetLogTag() { return t_log_tag; }

namespace internal {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : enabled_(level >= GetLogLevel()) {
  if (enabled_) {
    stream_ << "[" << LevelName(level) << " " << Basename(file) << ":" << line << "] ";
    if (!GetLogTag().empty()) {
      stream_ << "[" << GetLogTag() << "] ";
    }
  }
}

LogMessage::~LogMessage() {
  if (enabled_) {
    stream_ << "\n";
    std::cerr << stream_.str();
  }
}

}  // namespace internal
}  // namespace gs
