// Error handling primitives for gSampler.
//
// The library reports unrecoverable API misuse and internal invariant
// violations via gs::Error (derived from std::runtime_error) thrown by the
// GS_CHECK family of macros. Checks are always on: graph sampling programs
// are driven by user-provided inputs (frontiers, fanouts, probability
// tensors), and silently corrupting a sample is far worse than the cost of a
// branch per check.

#ifndef GSAMPLER_COMMON_ERROR_H_
#define GSAMPLER_COMMON_ERROR_H_

#include <exception>
#include <sstream>
#include <stdexcept>
#include <string>

namespace gs {

// Exception type thrown for all gSampler failures (shape mismatches, invalid
// programs, allocation budget violations, ...).
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

namespace internal {

// Builds the final message and throws. Out-of-line so the macro below stays
// cheap at call sites.
[[noreturn]] void ThrowCheckFailure(const char* file, int line, const char* expr,
                                    const std::string& message);

// Same message, written to stderr instead of thrown — used when the check
// fires during stack unwinding, where a destructor throw would terminate.
void LogSuppressedCheckFailure(const char* file, int line, const char* expr,
                               const std::string& message);

// Stream-style message collector used by GS_CHECK's `<<` tail. The throw
// happens in the destructor (end of the full expression), after all context
// has been streamed — the same shape as glog's fatal message sinks.
//
// If the check fires while another exception is already unwinding (a
// GS_CHECK inside a destructor running as part of stack unwinding), throwing
// from this destructor would call std::terminate. The builder is a temporary
// inside one full expression, so std::uncaught_exceptions() > 0 at
// destruction means exactly that: the check sits on an active unwind path
// and any throw here would escape through a destructor. In that case the
// failure is logged and swallowed so the original exception keeps
// propagating.
class CheckMessageBuilder {
 public:
  CheckMessageBuilder(const char* file, int line, const char* expr)
      : file_(file), line_(line), expr_(expr) {}

  template <typename T>
  CheckMessageBuilder& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

  ~CheckMessageBuilder() noexcept(false) {
    if (std::uncaught_exceptions() > 0) {
      LogSuppressedCheckFailure(file_, line_, expr_, stream_.str());
      return;
    }
    ThrowCheckFailure(file_, line_, expr_, stream_.str());
  }

 private:
  const char* file_;
  int line_;
  const char* expr_;
  std::ostringstream stream_;
};

}  // namespace internal
}  // namespace gs

// Verifies `condition`; on failure throws gs::Error with file/line/expr and
// any streamed context: GS_CHECK(a == b) << "a=" << a;
#define GS_CHECK(condition) \
  if (condition) {          \
  } else                    \
    ::gs::internal::CheckMessageBuilder(__FILE__, __LINE__, #condition)

#define GS_CHECK_EQ(a, b) GS_CHECK((a) == (b)) << "(" << (a) << " vs " << (b) << ") "
#define GS_CHECK_NE(a, b) GS_CHECK((a) != (b)) << "(" << (a) << " vs " << (b) << ") "
#define GS_CHECK_LT(a, b) GS_CHECK((a) < (b)) << "(" << (a) << " vs " << (b) << ") "
#define GS_CHECK_LE(a, b) GS_CHECK((a) <= (b)) << "(" << (a) << " vs " << (b) << ") "
#define GS_CHECK_GT(a, b) GS_CHECK((a) > (b)) << "(" << (a) << " vs " << (b) << ") "
#define GS_CHECK_GE(a, b) GS_CHECK((a) >= (b)) << "(" << (a) << " vs " << (b) << ") "

// Marks internal invariants (bugs in gSampler itself rather than API misuse).
#define GS_INTERNAL(condition) GS_CHECK(condition) << "[internal invariant] "

#endif  // GSAMPLER_COMMON_ERROR_H_
