// Element-wise binary operator tags shared by the dense tensor and sparse
// matrix kernels, matching the operator set in Table 4 of the paper
// (+, -, *, /, ** and the broadcast add/sub/mul/div).

#ifndef GSAMPLER_COMMON_BINARY_OP_H_
#define GSAMPLER_COMMON_BINARY_OP_H_

#include <cmath>

namespace gs {

enum class BinaryOp {
  kAdd,
  kSub,
  kMul,
  kDiv,
  kPow,
};

inline const char* BinaryOpName(BinaryOp op) {
  switch (op) {
    case BinaryOp::kAdd:
      return "add";
    case BinaryOp::kSub:
      return "sub";
    case BinaryOp::kMul:
      return "mul";
    case BinaryOp::kDiv:
      return "div";
    case BinaryOp::kPow:
      return "pow";
  }
  return "?";
}

inline float ApplyBinaryOp(BinaryOp op, float a, float b) {
  switch (op) {
    case BinaryOp::kAdd:
      return a + b;
    case BinaryOp::kSub:
      return a - b;
    case BinaryOp::kMul:
      return a * b;
    case BinaryOp::kDiv:
      return a / b;
    case BinaryOp::kPow:
      return std::pow(a, b);
  }
  return 0.0f;
}

}  // namespace gs

#endif  // GSAMPLER_COMMON_BINARY_OP_H_
