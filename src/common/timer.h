// Wall-clock timing helpers used by benchmarks and the layout-selection
// calibration pass.

#ifndef GSAMPLER_COMMON_TIMER_H_
#define GSAMPLER_COMMON_TIMER_H_

#include <chrono>
#include <cstdint>

namespace gs {

class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  void Reset() { start_ = Clock::now(); }

  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }
  int64_t ElapsedNanos() const {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() - start_).count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace gs

#endif  // GSAMPLER_COMMON_TIMER_H_
