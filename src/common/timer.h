// Wall-clock timing helpers used by benchmarks and the layout-selection
// calibration pass, plus a per-thread CPU timer for kernel cost
// measurement (immune to scheduling delays when pipeline stages share
// cores).

#ifndef GSAMPLER_COMMON_TIMER_H_
#define GSAMPLER_COMMON_TIMER_H_

#include <chrono>
#include <cstdint>

#if defined(__linux__) || defined(__APPLE__)
#include <time.h>
#define GSAMPLER_HAS_THREAD_CPUTIME 1
#endif

namespace gs {

class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  void Reset() { start_ = Clock::now(); }

  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }
  int64_t ElapsedNanos() const {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() - start_).count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

// Measures CPU time consumed by the calling thread. KernelScope uses this
// so that a kernel's simulated cost reflects the work it did, not how long
// the OS happened to deschedule the stage thread; falls back to wall time
// where the clock is unavailable.
class ThreadCpuTimer {
 public:
  ThreadCpuTimer() : start_(Now()) {}

  void Reset() { start_ = Now(); }

  int64_t ElapsedNanos() const { return Now() - start_; }

 private:
  static int64_t Now() {
#ifdef GSAMPLER_HAS_THREAD_CPUTIME
    timespec ts;
    if (clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts) == 0) {
      return int64_t{ts.tv_sec} * 1000000000 + ts.tv_nsec;
    }
#endif
    return std::chrono::duration_cast<std::chrono::nanoseconds>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
  }

  int64_t start_;
};

}  // namespace gs

#endif  // GSAMPLER_COMMON_TIMER_H_
