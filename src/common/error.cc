#include "common/error.h"

#include <cstdio>

namespace gs {
namespace internal {

void ThrowCheckFailure(const char* file, int line, const char* expr,
                       const std::string& message) {
  std::ostringstream out;
  out << "GS_CHECK failed at " << file << ":" << line << ": `" << expr << "` " << message;
  throw Error(out.str());
}

void LogSuppressedCheckFailure(const char* file, int line, const char* expr,
                               const std::string& message) {
  // stderr directly rather than the logging layer: this runs mid-unwind and
  // must not throw or allocate more than it has to.
  std::fprintf(stderr,
               "GS_CHECK failed during unwinding at %s:%d: `%s` %s "
               "(suppressed: another exception is in flight)\n",
               file, line, expr, message.c_str());
  std::fflush(stderr);
}

}  // namespace internal
}  // namespace gs
