#include "common/error.h"

namespace gs {
namespace internal {

void ThrowCheckFailure(const char* file, int line, const char* expr,
                       const std::string& message) {
  std::ostringstream out;
  out << "GS_CHECK failed at " << file << ":" << line << ": `" << expr << "` " << message;
  throw Error(out.str());
}

}  // namespace internal
}  // namespace gs
