// Minimal leveled logger.
//
// gSampler is a library; by default only warnings and errors are printed.
// Benchmarks and examples raise the level to Info to narrate progress.

#ifndef GSAMPLER_COMMON_LOGGING_H_
#define GSAMPLER_COMMON_LOGGING_H_

#include <iostream>
#include <sstream>
#include <string>

namespace gs {

enum class LogLevel : int {
  kDebug = 0,
  kInfo = 1,
  kWarning = 2,
  kError = 3,
};

// Process-wide minimum level; messages below it are discarded.
LogLevel GetLogLevel();
void SetLogLevel(LogLevel level);

// Thread-local tag prefixed to every log message this thread emits (the
// serving workers set it to the request id so a request's whole lifecycle
// greps by one token). Empty = no prefix.
void SetLogTag(const std::string& tag);
const std::string& GetLogTag();

// RAII tag for the duration of handling one request.
class ScopedLogTag {
 public:
  explicit ScopedLogTag(const std::string& tag) : previous_(GetLogTag()) { SetLogTag(tag); }
  ~ScopedLogTag() { SetLogTag(previous_); }

  ScopedLogTag(const ScopedLogTag&) = delete;
  ScopedLogTag& operator=(const ScopedLogTag&) = delete;

 private:
  std::string previous_;
};

namespace internal {

class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  template <typename T>
  LogMessage& operator<<(const T& value) {
    if (enabled_) {
      stream_ << value;
    }
    return *this;
  }

 private:
  bool enabled_;
  std::ostringstream stream_;
};

}  // namespace internal
}  // namespace gs

#define GS_LOG(level) ::gs::internal::LogMessage(::gs::LogLevel::k##level, __FILE__, __LINE__)

#endif  // GSAMPLER_COMMON_LOGGING_H_
