#include "graph/datasets.h"

#include "common/error.h"
#include "graph/generator.h"

namespace gs::graph {
namespace {

int64_t Scaled(int64_t base, double scale) {
  return std::max<int64_t>(64, static_cast<int64_t>(static_cast<double>(base) * scale));
}

}  // namespace

Graph MakeLJ(const DatasetOptions& options) {
  RMatParams p;
  p.name = "LJ";
  p.num_nodes = Scaled(50'000, options.scale);
  p.num_edges = Scaled(650'000, options.scale);
  p.undirected = false;
  p.weighted = options.weighted;
  p.frontier_fraction = 1.0;
  p.uva = false;
  p.seed = 0xA001;
  return MakeRMatGraph(p);
}

Graph MakePD(const DatasetOptions& options) {
  RMatParams p;
  p.name = "PD";
  // Highest average degree of the four (papers' PD: |E|/|V| ~ 50 after
  // doubling undirected edges) — the paper attributes its smaller PD
  // speedups to this.
  p.num_nodes = Scaled(25'000, options.scale);
  p.num_edges = Scaled(620'000, options.scale);
  p.undirected = true;
  p.weighted = options.weighted;
  p.frontier_fraction = 1.0;
  p.uva = false;
  p.seed = 0xA002;
  return MakeRMatGraph(p);
}

Graph MakePP(const DatasetOptions& options) {
  RMatParams p;
  p.name = "PP";
  p.num_nodes = Scaled(120'000, options.scale);
  p.num_edges = Scaled(1'800'000, options.scale);
  p.undirected = false;
  p.weighted = options.weighted;
  p.frontier_fraction = 1.0;
  p.uva = true;  // exceeds simulated device memory -> host + UVA
  p.seed = 0xA003;
  return MakeRMatGraph(p);
}

Graph MakeFS(const DatasetOptions& options) {
  RMatParams p;
  p.name = "FS";
  p.num_nodes = Scaled(100'000, options.scale);
  p.num_edges = Scaled(1'000'000, options.scale);
  p.undirected = true;
  p.weighted = options.weighted;
  p.frontier_fraction = 0.01;  // paper samples 1% of FS nodes as frontiers
  p.uva = true;
  p.seed = 0xA004;
  return MakeRMatGraph(p);
}

Graph MakeDataset(const std::string& abbr, const DatasetOptions& options) {
  if (abbr == "LJ") {
    return MakeLJ(options);
  }
  if (abbr == "PD") {
    return MakePD(options);
  }
  if (abbr == "PP") {
    return MakePP(options);
  }
  if (abbr == "FS") {
    return MakeFS(options);
  }
  GS_CHECK(false) << "unknown dataset abbreviation: " << abbr;
  return {};
}

std::vector<std::string> BenchmarkDatasetNames() { return {"LJ", "PD", "PP", "FS"}; }

}  // namespace gs::graph
