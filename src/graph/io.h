// Graph persistence: a plain-text edge-list loader (the format SNAP/OGB
// dumps reduce to) and a fast binary snapshot format for pre-processed
// graphs, so real datasets can be plugged into the benchmark harness in
// place of the synthetic analogues.

#ifndef GSAMPLER_GRAPH_IO_H_
#define GSAMPLER_GRAPH_IO_H_

#include <string>

#include "graph/graph.h"

namespace gs::graph {

struct EdgeListOptions {
  // Lines starting with this character are skipped ('#' for SNAP dumps).
  char comment = '#';
  // Add the reverse of every edge (undirected input).
  bool undirected = false;
  // Expect a third column with the edge weight.
  bool weighted = false;
  // Nodes beyond the max id seen (0 means infer from the edges).
  int64_t num_nodes = 0;
  // Host-resident adjacency accessed via simulated UVA.
  bool uva = false;
};

// Reads "src dst [weight]" lines. Throws gs::Error on malformed input.
Graph LoadEdgeList(const std::string& path, std::string name,
                   const EdgeListOptions& options = {});

// Binary snapshot of a graph's structure + features/labels/frontiers.
// Format: magic "GSG1", counts, then the raw arrays; see io.cc.
void SaveBinary(const Graph& g, const std::string& path);
Graph LoadBinary(const std::string& path, bool uva = false);

}  // namespace gs::graph

#endif  // GSAMPLER_GRAPH_IO_H_
