// Synthetic graph generators standing in for the paper's public datasets
// (see DESIGN.md, substitutions table). R-MAT reproduces the skewed degree
// distributions of social/product graphs; the planted-partition generator
// produces a community structure with learnable labels for the end-to-end
// training experiment (Table 8).

#ifndef GSAMPLER_GRAPH_GENERATOR_H_
#define GSAMPLER_GRAPH_GENERATOR_H_

#include <string>

#include "graph/graph.h"

namespace gs::graph {

struct RMatParams {
  std::string name = "rmat";
  int64_t num_nodes = 1024;   // rounded up to a power of two internally
  int64_t num_edges = 8192;   // directed edge draws before dedup
  double a = 0.57, b = 0.19, c = 0.19;  // R-MAT quadrant probabilities
  bool undirected = false;    // add the reverse of every edge
  bool weighted = false;      // uniform(0.5, 1.5) edge weights
  int feature_dim = 32;       // gaussian node features
  double frontier_fraction = 1.0;  // fraction of nodes used as frontiers
  bool uva = false;           // host-resident adjacency (UVA access)
  uint64_t seed = 42;
};

Graph MakeRMatGraph(const RMatParams& params);

struct PlantedPartitionParams {
  std::string name = "planted";
  int64_t num_nodes = 10000;
  int num_communities = 8;
  double intra_degree = 12.0;  // expected intra-community out-degree
  double inter_degree = 3.0;   // expected cross-community out-degree
  int feature_dim = 32;
  float feature_noise = 1.0f;  // gaussian noise added to the community signal
  bool weighted = false;
  uint64_t seed = 7;
};

// Community-labelled graph: features carry a noisy community indicator, so a
// GNN that aggregates neighborhoods can recover the label.
Graph MakePlantedPartitionGraph(const PlantedPartitionParams& params);

}  // namespace gs::graph

#endif  // GSAMPLER_GRAPH_GENERATOR_H_
