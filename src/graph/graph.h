// Input graphs for sampling: adjacency matrix + node features/labels +
// frontier set, with optional UVA residency for graphs that "exceed device
// memory" (the paper's PP and FS configurations).

#ifndef GSAMPLER_GRAPH_GRAPH_H_
#define GSAMPLER_GRAPH_GRAPH_H_

#include <memory>
#include <string>
#include <vector>

#include "feature/hot_set_cache.h"
#include "sparse/matrix.h"
#include "tensor/tensor.h"

namespace gs::graph {

class Graph {
 public:
  Graph() = default;

  // Builds a graph from directed edges (src -> dst). The adjacency matrix is
  // stored so that column v holds the in-neighbors of v (A[:, v]), matching
  // the paper's convention. Edges are deduplicated, self-loops dropped, and
  // per-column indices sorted (required by Node2Vec's adjacency test).
  //
  // Duplicate-edge resolution rule: `weights` (optional, aligned with
  // `edges`) become edge values, and when the same (src, dst) pair appears
  // more than once the FIRST occurrence in the input order wins — the sort
  // that groups duplicates tie-breaks on the original input index, so the
  // rule is deterministic regardless of the sort implementation. This rule
  // is load-bearing for gs::graph::GraphStore: delta compaction and
  // Snapshot materialization replay the identical resolution so that a
  // from-scratch FromEdges load of GraphStore::EffectiveEdges is
  // bit-identical to the incrementally maintained snapshot (pinned by
  // tests/test_graph.cc and the gs::oracle snapshot-equivalence check).
  static Graph FromEdges(std::string name, int64_t num_nodes,
                         std::vector<std::pair<int32_t, int32_t>> edges,
                         const std::vector<float>* weights = nullptr, bool uva = false);

  // Builds a graph directly from materialized CSC arrays (column v holds the
  // sorted in-neighbors of v). Used by gs::graph::GraphStore to materialize
  // mutation snapshots without a re-sort; the caller guarantees sorted,
  // deduplicated, self-loop-free columns (the FromEdges postconditions).
  static Graph FromCsc(std::string name, int64_t num_nodes, sparse::Compressed csc,
                       bool uva = false);

  const std::string& name() const { return name_; }
  int64_t num_nodes() const { return num_nodes_; }
  int64_t num_edges() const { return adj_.nnz(); }
  bool uva() const { return uva_cache_ != nullptr; }

  // Adjacency as a sparse matrix with CSC materialized (CSR on demand).
  const sparse::Matrix& adj() const { return adj_; }
  // Mutable access for experiment harnesses (e.g. swapping the UVA cache).
  sparse::Matrix& mutable_adj() { return adj_; }

  const tensor::Tensor& features() const { return features_; }
  const device::Array<int32_t>& labels() const { return labels_; }
  int num_classes() const { return num_classes_; }
  // Nodes used as sampling frontiers / training seeds.
  const device::Array<int32_t>& train_ids() const { return train_ids_; }

  void SetFeatures(tensor::Tensor features) { features_ = std::move(features); }
  void SetLabels(device::Array<int32_t> labels, int num_classes) {
    labels_ = std::move(labels);
    num_classes_ = num_classes;
  }
  void SetTrainIds(device::Array<int32_t> ids) { train_ids_ = std::move(ids); }

  feature::HotSetCache* uva_cache() const { return uva_cache_.get(); }

 private:
  std::string name_;
  int64_t num_nodes_ = 0;
  sparse::Matrix adj_;
  tensor::Tensor features_;
  device::Array<int32_t> labels_;
  int num_classes_ = 0;
  device::Array<int32_t> train_ids_;
  std::shared_ptr<feature::HotSetCache> uva_cache_;
  // RAII registration of the UVA cache's memory-pressure handler (allocator
  // OOM ladder -> HotSetCache::Shrink). Declared after uva_cache_ so the
  // handler is unregistered before the cache is destroyed; copies of the
  // Graph share the token and the last one unregisters.
  std::shared_ptr<void> uva_pressure_token_;
};

}  // namespace gs::graph

#endif  // GSAMPLER_GRAPH_GRAPH_H_
