#include "graph/io.h"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <limits>
#include <sstream>
#include <vector>

#include "common/error.h"
#include "fault/status.h"

namespace gs::graph {
namespace {

constexpr char kMagic[4] = {'G', 'S', 'G', '1'};

template <typename T>
void WriteArray(std::ofstream& out, const device::Array<T>& a) {
  const int64_t n = a.size();
  out.write(reinterpret_cast<const char*>(&n), sizeof(n));
  if (n > 0) {
    out.write(reinterpret_cast<const char*>(a.data()), n * sizeof(T));
  }
}

template <typename T>
device::Array<T> ReadArray(std::ifstream& in, device::MemorySpace space) {
  int64_t n = 0;
  in.read(reinterpret_cast<char*>(&n), sizeof(n));
  GS_CHECK(in.good() && n >= 0) << "corrupt array header";
  device::Array<T> a = device::Array<T>::Empty(n, space);
  if (n > 0) {
    in.read(reinterpret_cast<char*>(a.data()), n * sizeof(T));
    GS_CHECK(in.good()) << "truncated array body";
  }
  return a;
}

}  // namespace

Graph LoadEdgeList(const std::string& path, std::string name,
                   const EdgeListOptions& options) {
  std::ifstream in(path);
  GS_CHECK(in.is_open()) << "cannot open edge list: " << path;

  std::vector<std::pair<int32_t, int32_t>> edges;
  std::vector<float> weights;
  int64_t max_id = -1;
  std::string line;
  int64_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty() || line[0] == options.comment) {
      continue;
    }
    std::istringstream fields(line);
    int64_t src = -1;
    int64_t dst = -1;
    fields >> src >> dst;
    GS_CHECK(!fields.fail()) << path << ":" << line_no << ": expected 'src dst'";
    float w = 1.0f;
    if (options.weighted) {
      fields >> w;
      GS_CHECK(!fields.fail()) << path << ":" << line_no << ": expected a weight column";
    }
    GS_CHECK(src >= 0 && dst >= 0) << path << ":" << line_no << ": negative node id";
    // Node ids are stored as int32 throughout the engine; a larger id would
    // silently wrap under static_cast and alias an unrelated node, so reject
    // the file with a typed client error instead.
    constexpr int64_t kMaxId = std::numeric_limits<int32_t>::max();
    if (src > kMaxId || dst > kMaxId) {
      std::ostringstream msg;
      msg << path << ":" << line_no << ": node id " << std::max(src, dst)
          << " exceeds int32 range (" << kMaxId << ")";
      throw fault::InvalidRequestError(msg.str());
    }
    max_id = std::max({max_id, src, dst});
    edges.emplace_back(static_cast<int32_t>(src), static_cast<int32_t>(dst));
    if (options.weighted) {
      weights.push_back(w);
    }
    if (options.undirected) {
      edges.emplace_back(static_cast<int32_t>(dst), static_cast<int32_t>(src));
      if (options.weighted) {
        weights.push_back(w);
      }
    }
  }
  const int64_t num_nodes = options.num_nodes > 0 ? options.num_nodes : max_id + 1;
  GS_CHECK_GT(num_nodes, 0) << "empty edge list: " << path;
  Graph g = Graph::FromEdges(std::move(name), num_nodes, std::move(edges),
                             options.weighted ? &weights : nullptr, options.uva);
  // Default frontier set: every node.
  device::Array<int32_t> ids = device::Array<int32_t>::Empty(num_nodes);
  for (int64_t v = 0; v < num_nodes; ++v) {
    ids[v] = static_cast<int32_t>(v);
  }
  g.SetTrainIds(std::move(ids));
  return g;
}

void SaveBinary(const Graph& g, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  GS_CHECK(out.is_open()) << "cannot write: " << path;
  out.write(kMagic, sizeof(kMagic));

  const sparse::Compressed& csc = g.adj().Csc();
  const int64_t num_nodes = g.num_nodes();
  const int32_t num_classes = g.num_classes();
  const int64_t feature_cols = g.features().defined() ? g.features().cols() : 0;
  out.write(reinterpret_cast<const char*>(&num_nodes), sizeof(num_nodes));
  out.write(reinterpret_cast<const char*>(&num_classes), sizeof(num_classes));
  out.write(reinterpret_cast<const char*>(&feature_cols), sizeof(feature_cols));

  WriteArray(out, csc.indptr);
  WriteArray(out, csc.indices);
  WriteArray(out, csc.values.defined() ? csc.values
                                       : sparse::ValueArray{});  // empty = unweighted
  WriteArray(out, g.features().defined() ? g.features().array()
                                         : device::Array<float>{});
  WriteArray(out, g.labels().defined() ? g.labels() : device::Array<int32_t>{});
  WriteArray(out, g.train_ids().defined() ? g.train_ids() : device::Array<int32_t>{});
  GS_CHECK(out.good()) << "write failed: " << path;
}

Graph LoadBinary(const std::string& path, bool uva) {
  std::ifstream in(path, std::ios::binary);
  GS_CHECK(in.is_open()) << "cannot open: " << path;
  char magic[4];
  in.read(magic, sizeof(magic));
  GS_CHECK(in.good() && std::equal(magic, magic + 4, kMagic))
      << path << " is not a gSampler graph snapshot";

  int64_t num_nodes = 0;
  int32_t num_classes = 0;
  int64_t feature_cols = 0;
  in.read(reinterpret_cast<char*>(&num_nodes), sizeof(num_nodes));
  in.read(reinterpret_cast<char*>(&num_classes), sizeof(num_classes));
  in.read(reinterpret_cast<char*>(&feature_cols), sizeof(feature_cols));
  GS_CHECK(in.good() && num_nodes > 0) << "corrupt header in " << path;

  const device::MemorySpace space =
      uva ? device::MemorySpace::kHost : device::MemorySpace::kDevice;
  sparse::Compressed csc;
  csc.indptr = ReadArray<int64_t>(in, space);
  csc.indices = ReadArray<int32_t>(in, space);
  sparse::ValueArray values = ReadArray<float>(in, space);
  if (values.size() > 0) {
    GS_CHECK_EQ(values.size(), csc.indices.size()) << "weight/edge count mismatch";
    csc.values = std::move(values);
  }
  device::Array<float> features = ReadArray<float>(in, space);
  device::Array<int32_t> labels = ReadArray<int32_t>(in, device::MemorySpace::kDevice);
  device::Array<int32_t> train_ids = ReadArray<int32_t>(in, device::MemorySpace::kDevice);
  GS_CHECK_EQ(csc.indptr.size(), num_nodes + 1) << "indptr size mismatch";

  // Rebuild through the edge-list constructor to keep every invariant
  // (dedup, sorted columns, UVA cache wiring) in one place.
  std::vector<std::pair<int32_t, int32_t>> edges;
  std::vector<float> weights;
  edges.reserve(static_cast<size_t>(csc.indices.size()));
  for (int64_t c = 0; c < num_nodes; ++c) {
    for (int64_t e = csc.indptr[c]; e < csc.indptr[c + 1]; ++e) {
      edges.emplace_back(csc.indices[e], static_cast<int32_t>(c));
      if (csc.values.defined()) {
        weights.push_back(csc.values[e]);
      }
    }
  }
  Graph g = Graph::FromEdges("snapshot", num_nodes, std::move(edges),
                             csc.values.defined() ? &weights : nullptr, uva);
  if (features.size() > 0) {
    GS_CHECK_EQ(features.size(), num_nodes * feature_cols) << "feature size mismatch";
    g.SetFeatures(tensor::Tensor::FromArray({num_nodes, feature_cols}, std::move(features)));
  }
  if (labels.size() > 0) {
    g.SetLabels(std::move(labels), num_classes);
  }
  if (train_ids.size() > 0) {
    g.SetTrainIds(std::move(train_ids));
  }
  return g;
}

}  // namespace gs::graph
