// Graph partitioning for multi-device sharded sampling (gs::shard).
//
// A Partition splits a graph's adjacency across N shards so that every edge
// is owned by exactly one shard, and carries the global<->local node-id maps
// the shard runtime needs:
//
//  - Edge-cut: nodes are split into contiguous ranges balanced by in-degree;
//    an edge (r, c) is owned by the shard that owns its destination column
//    c, so each node's full in-adjacency is local to its home shard and
//    cut edges are those whose *source* is remote.
//  - Vertex-cut: low-degree columns keep their whole adjacency on the home
//    shard (as in the edge-cut), but a high-degree column's edge list is
//    split into contiguous chunks spread round-robin across shards starting
//    at the home shard — the classic power-law mitigation (PowerGraph);
//    the home shard remains the node's "master".
//
// Each shard's owned edges form a local CSC segment (a sparse::Matrix whose
// col_ids map local columns back to global node ids; CSR segments are
// available through the Matrix's cached conversion). Partitions are
// deterministic functions of the graph and shard count — two processes
// partitioning the same graph agree on every ownership decision — and are
// immutable after construction, so concurrent shard workers may consult
// them without locks.

#ifndef GSAMPLER_GRAPH_PARTITION_H_
#define GSAMPLER_GRAPH_PARTITION_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "graph/graph.h"
#include "sparse/matrix.h"

namespace gs::graph {

enum class PartitionKind {
  kEdgeCut,
  kVertexCut,
};

const char* PartitionKindName(PartitionKind kind);

// An immutable N-way split of one graph's edges. Built by Partitioner.
class Partition {
 public:
  int num_shards() const { return num_shards_; }
  PartitionKind kind() const { return kind_; }
  const Graph& graph() const { return graph_; }

  // Home shard of a global node id (owner of the node's column in the
  // edge-cut; master replica in the vertex-cut). O(1).
  int OwnerOf(int32_t global) const;

  // The shard's owned edges as a local CSC matrix: columns are the shard's
  // local node space (col_ids() maps back to global ids, ascending), rows
  // span the full graph. CSR is available via the Matrix's conversion.
  const sparse::Matrix& Segment(int shard) const;

  // Global node ids materialized in `shard`'s column space, ascending (the
  // segment's col_ids). For an edge-cut these are exactly the owned nodes;
  // a vertex-cut segment additionally carries remote masters' spilled
  // chunks.
  const std::vector<int32_t>& LocalNodes(int shard) const;

  // Global id -> local column index in `shard`'s segment; -1 when the node
  // has no columns on that shard.
  int32_t ToLocal(int shard, int32_t global) const;
  // Local column index -> global id (inverse of ToLocal where defined).
  int32_t ToGlobal(int shard, int32_t local) const;

  // Plurality home shard of a frontier (ties break toward the lower shard
  // id); the locality-aware routing hint used by serving. Labeled
  // super-batch ids fold with modulo; negative ids (walk dead-ends) are
  // skipped. An empty frontier routes to shard 0.
  int HomeShard(const int32_t* ids, int64_t count) const;

  // Bytes a remote shard must ship to materialize `global`'s in-adjacency:
  // in-degree x (index + optional weight) bytes. The FrontierExchange cost
  // model charges these over the interconnect.
  int64_t AdjBytes(int32_t global) const;

  // Sum of AdjBytes over all nodes NOT owned by `shard` — an upper bound on
  // what the shard could ever pull over the interconnect.
  int64_t RemoteBytesBound(int shard) const;

  // --- Replica placement (gs::ha) -------------------------------------
  //
  // With r > 1 replicas, shard s's CSC segment is additionally mirrored
  // onto r-1 other devices by chained declustering: replica k of shard s
  // lives on device (s + k) % num_shards. The placement is a pure function
  // of (shard, replica, num_shards), so every process — and every failover
  // decision — agrees on it without coordination, and a single dead device
  // takes out exactly one replica of each of r shards instead of all
  // replicas of one.
  int num_replicas() const { return num_replicas_; }

  // Device hosting replica `r` (0 = primary) of `shard`.
  int ReplicaDevice(int shard, int r) const;

  // Whether `device` hosts a replica of `shard`'s segment.
  bool Hosts(int device, int shard) const;

  // Bytes of `shard`'s CSC segment (index + optional weight per edge) — the
  // per-replica mirror cost the HA layer charges for placement.
  int64_t SegmentBytes(int shard) const;

  // Incremental-rebuild accounting (gs::dyn): how many shard segments the
  // last Partitioner::Rebuild over this partition actually rebuilt vs
  // reused by reference. Both zero for a from-scratch Build.
  int segments_rebuilt() const { return segments_rebuilt_; }
  int segments_reused() const { return segments_reused_; }

  std::string DebugString() const;

 private:
  friend class Partitioner;

  Graph graph_;
  PartitionKind kind_ = PartitionKind::kEdgeCut;
  int num_shards_ = 1;
  int num_replicas_ = 1;
  int64_t bytes_per_edge_ = 4;
  std::vector<int32_t> owner_;                 // node -> home shard
  std::vector<int64_t> degree_;                // node -> in-degree
  std::vector<sparse::Matrix> segments_;       // shard -> local CSC
  std::vector<std::vector<int32_t>> locals_;   // shard -> sorted global ids
  std::vector<std::unordered_map<int32_t, int32_t>> to_local_;
  int segments_rebuilt_ = 0;  // last Rebuild only
  int segments_reused_ = 0;
};

// Factory for deterministic partitions. Edge-cut balances contiguous node
// ranges by in-degree; vertex-cut additionally splits columns whose degree
// exceeds 4x the average into per-shard chunks. `num_replicas` (1..shards)
// mirrors each shard's segment onto that many devices by chained
// declustering (see Partition::ReplicaDevice).
class Partitioner {
 public:
  static Partition EdgeCut(const Graph& graph, int num_shards);
  static Partition VertexCut(const Graph& graph, int num_shards);
  static Partition Build(const Graph& graph, PartitionKind kind, int num_shards,
                         int num_replicas = 1);

  // Incremental re-partition after a mutation epoch (gs::dyn). Node
  // ownership (and therefore routing and the global<->local maps) is kept
  // from `base` — ownership churn would invalidate every shard's locality
  // at once — and only the shards owning a column in `touched_cols` get
  // their CSC segment rebuilt from `graph`; every other segment is reused
  // by reference (sparse::Matrix copies share storage). Edge-cut only: a
  // vertex-cut's hub spill depends on global degree, so it falls back to a
  // full Build with base's shard/replica counts (counted as all-rebuilt).
  // `graph` must have base's node count.
  static Partition Rebuild(const Partition& base, const Graph& graph,
                           const std::vector<int32_t>& touched_cols);
};

}  // namespace gs::graph

#endif  // GSAMPLER_GRAPH_PARTITION_H_
