#include "graph/store.h"

#include <algorithm>
#include <utility>

#include "common/error.h"

namespace gs::graph {
namespace {

constexpr uint64_t kFnvOffset = 1469598103934665603ull;
constexpr uint64_t kFnvPrime = 1099511628211ull;

void FnvMix(uint64_t& h, const void* data, size_t bytes) {
  const auto* p = static_cast<const unsigned char*>(data);
  for (size_t i = 0; i < bytes; ++i) {
    h ^= p[i];
    h *= kFnvPrime;
  }
}

template <typename T>
void FnvMixArray(uint64_t& h, const device::Array<T>& a) {
  if (a.size() > 0) {
    FnvMix(h, a.data(), static_cast<size_t>(a.bytes()));
  }
}

}  // namespace

std::vector<int32_t> MutationBatch::TouchedColumns() const {
  std::vector<int32_t> cols;
  cols.reserve(add_edges.size() + remove_edges.size());
  for (const EdgeAdd& e : add_edges) {
    if (e.src != e.dst) {
      cols.push_back(e.dst);
    }
  }
  for (const auto& [src, dst] : remove_edges) {
    (void)src;
    cols.push_back(dst);
  }
  std::sort(cols.begin(), cols.end());
  cols.erase(std::unique(cols.begin(), cols.end()), cols.end());
  return cols;
}

DegreeStats DegreeStats::FromMatrix(const sparse::Matrix& adj, int64_t top_k) {
  DegreeStats s;
  s.num_nodes = adj.num_cols();
  s.num_edges = adj.nnz();
  if (s.num_nodes == 0) {
    return s;
  }
  const sparse::Compressed& csc = adj.Csc();
  std::vector<int64_t> degree(static_cast<size_t>(s.num_nodes));
  for (int64_t v = 0; v < s.num_nodes; ++v) {
    degree[static_cast<size_t>(v)] = csc.indptr[v + 1] - csc.indptr[v];
  }
  s.mean_in_degree = static_cast<double>(s.num_edges) / static_cast<double>(s.num_nodes);
  s.max_in_degree = *std::max_element(degree.begin(), degree.end());

  std::vector<int64_t> sorted = degree;
  std::sort(sorted.begin(), sorted.end());
  const auto p99_idx = static_cast<size_t>(
      std::min<int64_t>(s.num_nodes - 1, (s.num_nodes * 99) / 100));
  s.p99_in_degree = sorted[p99_idx];

  // Top-K by degree, ties to the lower id; reported sorted by id so hub-set
  // overlap is a linear merge.
  const int64_t k = std::min<int64_t>(top_k, s.num_nodes);
  std::vector<int32_t> ids(static_cast<size_t>(s.num_nodes));
  for (int64_t v = 0; v < s.num_nodes; ++v) {
    ids[static_cast<size_t>(v)] = static_cast<int32_t>(v);
  }
  std::partial_sort(ids.begin(), ids.begin() + k, ids.end(), [&](int32_t a, int32_t b) {
    const int64_t da = degree[static_cast<size_t>(a)];
    const int64_t db = degree[static_cast<size_t>(b)];
    if (da != db) {
      return da > db;
    }
    return a < b;
  });
  s.hubs.assign(ids.begin(), ids.begin() + k);
  std::sort(s.hubs.begin(), s.hubs.end());
  return s;
}

double DegreeStats::HubOverlap(const std::vector<int32_t>& a, const std::vector<int32_t>& b) {
  if (a.empty()) {
    return 1.0;
  }
  size_t i = 0;
  size_t j = 0;
  int64_t common = 0;
  while (i < a.size() && j < b.size()) {
    if (a[i] == b[j]) {
      ++common;
      ++i;
      ++j;
    } else if (a[i] < b[j]) {
      ++i;
    } else {
      ++j;
    }
  }
  return static_cast<double>(common) / static_cast<double>(a.size());
}

uint64_t Snapshot::DigestOf(const Graph& graph) {
  uint64_t h = kFnvOffset;
  const int64_t n = graph.num_nodes();
  FnvMix(h, &n, sizeof(n));
  const sparse::Compressed& csc = graph.adj().Csc();
  FnvMixArray(h, csc.indptr);
  FnvMixArray(h, csc.indices);
  if (csc.values.defined()) {
    FnvMixArray(h, csc.values);
  }
  return h;
}

std::shared_ptr<const Snapshot> Snapshot::Wrap(const Graph& graph) {
  auto snap = std::shared_ptr<Snapshot>(new Snapshot());
  snap->epoch_ = 0;
  snap->digest_ = DigestOf(graph);
  snap->graph_ = graph;
  snap->degree_stats_ = DegreeStats::FromMatrix(graph.adj());
  return snap;
}

GraphStore::GraphStore(Graph base, GraphStoreOptions options) : options_(options) {
  GS_CHECK_GT(options_.segment_cols, 0);
  name_ = base.name();
  num_nodes_ = base.num_nodes();
  uva_ = base.uva();
  const sparse::Compressed& csc = base.adj().Csc();
  weighted_ = csc.values.defined();

  // Slice the base CSC into immutable column segments.
  const int64_t num_segments = (num_nodes_ + options_.segment_cols - 1) / options_.segment_cols;
  segments_.reserve(static_cast<size_t>(num_segments));
  for (int64_t s = 0; s < num_segments; ++s) {
    auto seg = std::make_shared<ColumnSegment>();
    seg->begin_col = s * options_.segment_cols;
    seg->end_col = std::min(num_nodes_, seg->begin_col + options_.segment_cols);
    const int64_t base_off = csc.indptr[seg->begin_col];
    seg->offsets.reserve(static_cast<size_t>(seg->end_col - seg->begin_col) + 1);
    for (int64_t c = seg->begin_col; c <= seg->end_col; ++c) {
      seg->offsets.push_back(csc.indptr[c] - base_off);
    }
    const int64_t nnz = seg->offsets.back();
    seg->indices.resize(static_cast<size_t>(nnz));
    for (int64_t i = 0; i < nnz; ++i) {
      seg->indices[static_cast<size_t>(i)] = csc.indices[base_off + i];
    }
    if (weighted_) {
      seg->weights.resize(static_cast<size_t>(nnz));
      for (int64_t i = 0; i < nnz; ++i) {
        seg->weights[static_cast<size_t>(i)] = csc.values[base_off + i];
      }
    }
    segments_.push_back(std::move(seg));
  }

  auto snap = std::shared_ptr<Snapshot>(new Snapshot());
  snap->epoch_ = 0;
  snap->digest_ = Snapshot::DigestOf(base);
  snap->graph_ = std::move(base);
  snap->degree_stats_ = DegreeStats::FromMatrix(snap->graph_.adj(), options_.hub_top_k);
  current_ = snap;
}

std::shared_ptr<const Snapshot> GraphStore::Current() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return current_;
}

GraphStore::ColumnOverlay GraphStore::EffectiveColumnLocked(int64_t col) const {
  auto it = overlay_.find(col);
  if (it != overlay_.end()) {
    return it->second;
  }
  const ColumnSegment& seg = *segments_[static_cast<size_t>(SegmentOf(col))];
  const int64_t local = col - seg.begin_col;
  const int64_t begin = seg.offsets[static_cast<size_t>(local)];
  const int64_t end = seg.offsets[static_cast<size_t>(local) + 1];
  ColumnOverlay column;
  column.reserve(static_cast<size_t>(end - begin));
  for (int64_t i = begin; i < end; ++i) {
    column.emplace_back(seg.indices[static_cast<size_t>(i)],
                        seg.weights.empty() ? 0.0f : seg.weights[static_cast<size_t>(i)]);
  }
  return column;
}

std::shared_ptr<const Snapshot> GraphStore::Apply(const MutationBatch& batch) {
  std::unique_lock<std::mutex> lock(mutex_);

  // Removes first, then adds (upserts) in batch order — so a pair that is
  // both removed and re-added within one batch ends up present with the
  // add's weight, and the last add for a pair wins.
  for (const auto& [src, dst] : batch.remove_edges) {
    GS_CHECK(src >= 0 && src < num_nodes_ && dst >= 0 && dst < num_nodes_)
        << "remove (" << src << "," << dst << ") out of range";
    if (src == dst) {
      continue;
    }
    ColumnOverlay column = EffectiveColumnLocked(dst);
    auto it = std::lower_bound(column.begin(), column.end(), src,
                               [](const auto& e, int32_t s) { return e.first < s; });
    if (it != column.end() && it->first == src) {
      column.erase(it);
      ++stats_.edges_removed;
    }
    overlay_[dst] = std::move(column);
  }
  for (const EdgeAdd& e : batch.add_edges) {
    GS_CHECK(e.src >= 0 && e.src < num_nodes_ && e.dst >= 0 && e.dst < num_nodes_)
        << "add (" << e.src << "," << e.dst << ") out of range";
    if (e.src == e.dst) {
      continue;  // self-loops dropped, matching Graph::FromEdges
    }
    ColumnOverlay column = EffectiveColumnLocked(e.dst);
    auto it = std::lower_bound(column.begin(), column.end(), e.src,
                               [](const auto& p, int32_t s) { return p.first < s; });
    if (it != column.end() && it->first == e.src) {
      it->second = e.weight;
      ++stats_.edges_updated;
    } else {
      column.insert(it, {e.src, e.weight});
      ++stats_.edges_added;
    }
    overlay_[e.dst] = std::move(column);
  }

  // Feature rows copy-on-write: the new epoch gets its own tensor only when
  // this batch touches features; otherwise storage stays shared.
  Graph attrs = current_->graph();
  if (!batch.update_features.empty()) {
    GS_CHECK(attrs.features().defined()) << "feature update on a graph without features";
    tensor::Tensor features = attrs.features().Clone();
    const int64_t dim = features.cols();
    for (const FeatureUpdate& u : batch.update_features) {
      GS_CHECK(u.node >= 0 && u.node < num_nodes_) << "feature update node out of range";
      GS_CHECK_EQ(static_cast<int64_t>(u.row.size()), dim);
      for (int64_t c = 0; c < dim; ++c) {
        features.at(u.node, c) = u.row[static_cast<size_t>(c)];
      }
      ++stats_.features_updated;
    }
    attrs.SetFeatures(std::move(features));
  }

  delta_log_.push_back(batch);
  ++stats_.batches_applied;
  stats_.delta_entries = static_cast<int64_t>(delta_log_.size());

  std::shared_ptr<const Snapshot> snap = MaterializeLocked(current_->epoch() + 1, attrs);
  current_ = snap;
  stats_.epoch = snap->epoch();

  if (options_.seal_threshold > 0 &&
      static_cast<int64_t>(delta_log_.size()) >= options_.seal_threshold) {
    SealLocked();
  }

  // Fire listeners after releasing mutex_ so a listener may call back into
  // Current()/EffectiveEdges()/stats() without deadlocking.
  lock.unlock();
  std::vector<Listener> fire;
  {
    std::lock_guard<std::mutex> llock(listener_mutex_);
    fire.reserve(listeners_.size());
    for (const auto& [id, l] : listeners_) {
      (void)id;
      fire.push_back(l);
    }
  }
  for (const Listener& l : fire) {
    l(snap, batch);
  }
  return snap;
}

std::shared_ptr<const Snapshot> GraphStore::MaterializeLocked(uint64_t epoch, Graph attrs) {
  const device::MemorySpace space =
      uva_ ? device::MemorySpace::kHost : device::MemorySpace::kDevice;

  sparse::Compressed csc;
  csc.indptr = sparse::OffsetArray::Empty(num_nodes_ + 1, space);
  csc.indptr[0] = 0;
  int64_t nnz = 0;
  for (int64_t col = 0; col < num_nodes_; ++col) {
    auto it = overlay_.find(col);
    if (it != overlay_.end()) {
      nnz += static_cast<int64_t>(it->second.size());
    } else {
      const ColumnSegment& seg = *segments_[static_cast<size_t>(SegmentOf(col))];
      const int64_t local = col - seg.begin_col;
      nnz += seg.offsets[static_cast<size_t>(local) + 1] - seg.offsets[static_cast<size_t>(local)];
    }
    csc.indptr[col + 1] = nnz;
  }
  csc.indices = sparse::IdArray::Empty(nnz, space);
  if (weighted_) {
    csc.values = sparse::ValueArray::Empty(nnz, space);
  }
  int64_t cursor = 0;
  for (int64_t col = 0; col < num_nodes_; ++col) {
    auto it = overlay_.find(col);
    if (it != overlay_.end()) {
      for (const auto& [src, w] : it->second) {
        csc.indices[cursor] = src;
        if (weighted_) {
          csc.values[cursor] = w;
        }
        ++cursor;
      }
    } else {
      const ColumnSegment& seg = *segments_[static_cast<size_t>(SegmentOf(col))];
      const int64_t local = col - seg.begin_col;
      const int64_t begin = seg.offsets[static_cast<size_t>(local)];
      const int64_t end = seg.offsets[static_cast<size_t>(local) + 1];
      for (int64_t i = begin; i < end; ++i) {
        csc.indices[cursor] = seg.indices[static_cast<size_t>(i)];
        if (weighted_) {
          csc.values[cursor] = seg.weights[static_cast<size_t>(i)];
        }
        ++cursor;
      }
    }
  }
  GS_INTERNAL(cursor == nnz);

  Graph g = Graph::FromCsc(name_, num_nodes_, std::move(csc), uva_);
  if (attrs.features().defined()) {
    g.SetFeatures(attrs.features());
  }
  if (attrs.labels().defined()) {
    g.SetLabels(attrs.labels(), attrs.num_classes());
  }
  if (attrs.train_ids().defined()) {
    g.SetTrainIds(attrs.train_ids());
  }

  auto snap = std::shared_ptr<Snapshot>(new Snapshot());
  snap->epoch_ = epoch;
  snap->digest_ = Snapshot::DigestOf(g);
  snap->graph_ = std::move(g);
  snap->degree_stats_ = DegreeStats::FromMatrix(snap->graph_.adj(), options_.hub_top_k);
  return snap;
}

void GraphStore::Seal() {
  std::lock_guard<std::mutex> lock(mutex_);
  SealLocked();
}

void GraphStore::SealLocked() {
  if (overlay_.empty() && delta_log_.empty()) {
    return;
  }
  // Rebuild exactly the segments holding overlaid columns; every other
  // segment is reused by reference (the COW guarantee).
  std::vector<bool> touched(segments_.size(), false);
  for (const auto& [col, column] : overlay_) {
    (void)column;
    touched[static_cast<size_t>(SegmentOf(col))] = true;
  }
  for (size_t s = 0; s < segments_.size(); ++s) {
    if (!touched[s]) {
      ++stats_.segments_reused;
      continue;
    }
    const ColumnSegment& old = *segments_[s];
    auto fresh = std::make_shared<ColumnSegment>();
    fresh->begin_col = old.begin_col;
    fresh->end_col = old.end_col;
    fresh->offsets.reserve(static_cast<size_t>(old.end_col - old.begin_col) + 1);
    fresh->offsets.push_back(0);
    for (int64_t col = old.begin_col; col < old.end_col; ++col) {
      const ColumnOverlay column = EffectiveColumnLocked(col);
      for (const auto& [src, w] : column) {
        fresh->indices.push_back(src);
        if (weighted_) {
          fresh->weights.push_back(w);
        }
      }
      fresh->offsets.push_back(static_cast<int64_t>(fresh->indices.size()));
    }
    segments_[s] = std::move(fresh);
    ++stats_.segments_rebuilt;
  }
  overlay_.clear();
  delta_log_.clear();
  stats_.delta_entries = 0;
  ++stats_.seals;
}

std::vector<std::pair<int32_t, int32_t>> GraphStore::EffectiveEdges(
    std::vector<float>* weights) const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::pair<int32_t, int32_t>> edges;
  if (weights != nullptr) {
    weights->clear();
  }
  for (int64_t col = 0; col < num_nodes_; ++col) {
    const ColumnOverlay column = EffectiveColumnLocked(col);
    for (const auto& [src, w] : column) {
      edges.emplace_back(src, static_cast<int32_t>(col));
      if (weights != nullptr) {
        weights->push_back(w);
      }
    }
  }
  return edges;
}

int64_t GraphStore::AddListener(Listener listener) {
  std::lock_guard<std::mutex> lock(listener_mutex_);
  const int64_t id = next_listener_id_++;
  listeners_[id] = std::move(listener);
  return id;
}

void GraphStore::RemoveListener(int64_t id) {
  std::lock_guard<std::mutex> lock(listener_mutex_);
  listeners_.erase(id);
}

GraphStoreStats GraphStore::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

}  // namespace gs::graph
