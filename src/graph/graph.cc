#include "graph/graph.h"

#include <algorithm>

#include "common/error.h"
#include "device/device.h"

namespace gs::graph {

Graph Graph::FromEdges(std::string name, int64_t num_nodes,
                       std::vector<std::pair<int32_t, int32_t>> edges,
                       const std::vector<float>* weights, bool uva) {
  GS_CHECK_GT(num_nodes, 0);
  if (weights != nullptr) {
    GS_CHECK_EQ(weights->size(), edges.size());
  }

  // Sort by (dst, src) so CSC columns come out sorted, then deduplicate.
  // Duplicates tie-break on the original input index so that "first
  // occurrence wins" for weights is deterministic even though std::sort is
  // not stable (see the resolution rule documented in graph.h — delta
  // compaction in graph/store.cc must replay it exactly).
  std::vector<int64_t> order(edges.size());
  for (size_t i = 0; i < order.size(); ++i) {
    order[i] = static_cast<int64_t>(i);
  }
  std::sort(order.begin(), order.end(), [&](int64_t a, int64_t b) {
    const auto& ea = edges[static_cast<size_t>(a)];
    const auto& eb = edges[static_cast<size_t>(b)];
    if (ea.second != eb.second) {
      return ea.second < eb.second;
    }
    if (ea.first != eb.first) {
      return ea.first < eb.first;
    }
    return a < b;
  });

  const device::MemorySpace space =
      uva ? device::MemorySpace::kHost : device::MemorySpace::kDevice;

  // First pass: count unique in-edges per column.
  std::vector<int64_t> degree(static_cast<size_t>(num_nodes) + 1, 0);
  int64_t unique_edges = 0;
  int32_t prev_src = -1;
  int32_t prev_dst = -1;
  for (int64_t idx : order) {
    const auto& [src, dst] = edges[static_cast<size_t>(idx)];
    GS_CHECK(src >= 0 && src < num_nodes && dst >= 0 && dst < num_nodes)
        << "edge (" << src << "," << dst << ") out of range";
    if (src == dst || (src == prev_src && dst == prev_dst)) {
      continue;
    }
    ++degree[static_cast<size_t>(dst) + 1];
    ++unique_edges;
    prev_src = src;
    prev_dst = dst;
  }

  sparse::Compressed csc;
  csc.indptr = sparse::OffsetArray::Empty(num_nodes + 1, space);
  csc.indptr[0] = 0;
  for (int64_t v = 0; v < num_nodes; ++v) {
    csc.indptr[v + 1] = csc.indptr[v] + degree[static_cast<size_t>(v) + 1];
  }
  csc.indices = sparse::IdArray::Empty(unique_edges, space);
  if (weights != nullptr) {
    csc.values = sparse::ValueArray::Empty(unique_edges, space);
  }

  int64_t cursor = 0;
  prev_src = -1;
  prev_dst = -1;
  for (int64_t idx : order) {
    const auto& [src, dst] = edges[static_cast<size_t>(idx)];
    if (src == dst || (src == prev_src && dst == prev_dst)) {
      continue;
    }
    csc.indices[cursor] = src;
    if (weights != nullptr) {
      csc.values[cursor] = (*weights)[static_cast<size_t>(idx)];
    }
    ++cursor;
    prev_src = src;
    prev_dst = dst;
  }
  GS_INTERNAL(cursor == unique_edges);

  return FromCsc(std::move(name), num_nodes, std::move(csc), uva);
}

Graph Graph::FromCsc(std::string name, int64_t num_nodes, sparse::Compressed csc, bool uva) {
  GS_CHECK_GT(num_nodes, 0);
  GS_CHECK_EQ(csc.indptr.size(), num_nodes + 1);
  Graph g;
  g.name_ = std::move(name);
  g.num_nodes_ = num_nodes;
  g.adj_ = sparse::Matrix::FromCsc(num_nodes, num_nodes, std::move(csc));
  if (uva) {
    // One cache slot per ~32 nodes models a GPU-side cache that can hold the
    // hot fraction of the adjacency structure.
    g.uva_cache_ = std::make_shared<feature::HotSetCache>(std::max<int64_t>(num_nodes / 32, 1024));
    g.adj_.SetUvaCache(g.uva_cache_.get());
    // Join the allocator's OOM ladder: under memory pressure the UVA cache
    // halves its live slots (a smaller simulated device footprint, traded
    // for a higher miss rate). Shrink frees no accounted bytes, so the
    // handler reports 0; the ladder still retries after invoking handlers.
    device::CachingAllocator* allocator = &device::Current().allocator();
    feature::HotSetCache* cache = g.uva_cache_.get();
    const int64_t handler_id = allocator->RegisterPressureHandler([cache](int64_t) -> int64_t {
      cache->Shrink();
      return 0;
    });
    g.uva_pressure_token_ = std::shared_ptr<void>(
        nullptr, [allocator, handler_id](void*) { allocator->UnregisterPressureHandler(handler_id); });
  }
  return g;
}

}  // namespace gs::graph
