// gs::graph::GraphStore — versioned graph snapshots with online mutations.
//
// A server for millions of users cannot restart to pick up new edges
// (ROADMAP item 4), yet every sampling layer here wants an immutable graph:
// compiled plans embed layout/calibration decisions, sessions run lock-free
// over frozen adjacency, shards partition a fixed edge set. GraphStore
// reconciles the two with the classic snapshot design (AliGraph-style):
//
//   - The base adjacency is held as copy-on-write COLUMN SEGMENTS — fixed
//     column ranges of the CSC, each an immutable shared_ptr. A mutation
//     touching column v only ever replaces v's segment; every other segment
//     is structurally shared across epochs (GraphStoreStats counts
//     segments_reused vs segments_rebuilt).
//   - Mutations arrive as MutationBatch and land in an append-only DELTA
//     LOG plus an in-memory per-column overlay. Apply() materializes a new
//     immutable Snapshot — epoch-numbered and digest-stamped — on the
//     calling (ingest) thread, so readers never see a half-applied batch
//     and serving never stalls: in-flight work keeps pinning old snapshots
//     via shared_ptr until completion.
//   - Seal() compacts the delta run into fresh COW segments (again off the
//     serving path) and clears the log; compaction replays the exact
//     FromEdges duplicate-resolution rule, so a sealed store is
//     bit-identical to an unsealed one.
//
// Mutation semantics (the contract the oracle pins):
//   - add_edges are UPSERTS: a (src, dst) that already exists has its
//     weight replaced; a new pair is inserted in sorted position.
//     Self-loops are dropped, matching Graph::FromEdges. Within one batch,
//     the LAST add for a pair wins (it is the newest write).
//   - remove_edges delete the pair when present (no-op otherwise).
//   - update_features overwrite whole feature rows (the feature tensor is
//     copied-on-first-write per epoch; untouched epochs share storage).
//
// Equivalence guarantee: for every epoch,
//   Graph::FromEdges(EffectiveEdges())  ==  snapshot->graph()
// bit-for-bit (CSC arrays and digest), which is what makes gs::oracle's
// snapshot check and fuzz_passes --mutate possible.

#ifndef GSAMPLER_GRAPH_STORE_H_
#define GSAMPLER_GRAPH_STORE_H_

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "graph/graph.h"
#include "sparse/matrix.h"

namespace gs::graph {

// One in-edge upsert: insert (src -> dst) or, when the pair already exists,
// replace its weight.
struct EdgeAdd {
  int32_t src = 0;
  int32_t dst = 0;
  float weight = 1.0f;  // ignored when the base graph is unweighted
};

// One whole-row feature overwrite; `row` must match the feature dim.
struct FeatureUpdate {
  int32_t node = 0;
  std::vector<float> row;
};

struct MutationBatch {
  std::vector<EdgeAdd> add_edges;
  std::vector<std::pair<int32_t, int32_t>> remove_edges;
  std::vector<FeatureUpdate> update_features;

  bool empty() const {
    return add_edges.empty() && remove_edges.empty() && update_features.empty();
  }
  // Distinct destination columns this batch touches (sorted).
  std::vector<int32_t> TouchedColumns() const;
};

// In-degree distribution summary used by plan validity predicates
// (core::PlanValidity). Lives in gs::graph — not gs::core — because core
// already depends on graph and the reverse edge would be a cycle.
struct DegreeStats {
  int64_t num_nodes = 0;
  int64_t num_edges = 0;
  double mean_in_degree = 0.0;
  int64_t p99_in_degree = 0;
  int64_t max_in_degree = 0;
  // Top-`top_k` nodes by in-degree (ties broken by lower id), sorted by id —
  // the "hub set" whose membership stability gates layout decisions.
  std::vector<int32_t> hubs;

  static DegreeStats FromMatrix(const sparse::Matrix& adj, int64_t top_k = 32);
  // |a ∩ b| / |a| for the hub sets (1.0 when `a` is empty).
  static double HubOverlap(const std::vector<int32_t>& a, const std::vector<int32_t>& b);
};

// An immutable epoch of the graph. Snapshots are handed out as
// shared_ptr<const Snapshot>; holding one pins the whole epoch (adjacency,
// features, labels, train ids) for the holder's lifetime — the pinning rule
// every consumer (SamplerSession, shards, serving requests) relies on.
class Snapshot {
 public:
  uint64_t epoch() const { return epoch_; }
  // FNV-1a digest over the materialized CSC (indptr, indices, values) —
  // identical for an incrementally maintained epoch and a from-scratch
  // FromEdges load of the same effective edge set.
  uint64_t digest() const { return digest_; }
  const Graph& graph() const { return graph_; }
  const DegreeStats& degree_stats() const { return degree_stats_; }

  // Wraps a standalone static graph as an epoch-0 snapshot so legacy
  // static-graph paths and dynamic paths share one pinning currency.
  static std::shared_ptr<const Snapshot> Wrap(const Graph& graph);

  // Digest of a graph's materialized CSC (what digest() reports).
  static uint64_t DigestOf(const Graph& graph);

 private:
  friend class GraphStore;
  Snapshot() = default;

  uint64_t epoch_ = 0;
  uint64_t digest_ = 0;
  Graph graph_;
  DegreeStats degree_stats_;
};

struct GraphStoreOptions {
  // Columns per COW segment. Smaller segments = finer-grained sharing
  // across epochs, more per-epoch bookkeeping.
  int64_t segment_cols = 1024;
  // Hub-set size tracked in every snapshot's DegreeStats.
  int64_t hub_top_k = 32;
  // Auto-seal when the delta log reaches this many entries (0 = manual
  // Seal() only). Sealing runs on the ingest thread inside Apply.
  int64_t seal_threshold = 0;
};

struct GraphStoreStats {
  uint64_t epoch = 0;
  int64_t batches_applied = 0;
  int64_t edges_added = 0;    // new pairs inserted
  int64_t edges_updated = 0;  // existing pairs whose weight was replaced
  int64_t edges_removed = 0;  // pairs deleted
  int64_t features_updated = 0;
  // COW accounting, cumulative over every materialization.
  int64_t segments_rebuilt = 0;
  int64_t segments_reused = 0;
  int64_t delta_entries = 0;  // current (un-sealed) log length, in batches
  int64_t seals = 0;
};

class GraphStore {
 public:
  // Takes over `base` as epoch 0. The base graph's features/labels/train
  // ids are shared by every snapshot until a FeatureUpdate copies-on-write.
  explicit GraphStore(Graph base, GraphStoreOptions options = {});

  // The latest snapshot. Thread-safe; never null.
  std::shared_ptr<const Snapshot> Current() const;

  // Applies one batch, producing (and returning) the next epoch's snapshot.
  // Runs entirely on the calling thread — existing snapshots are untouched
  // and concurrently readable throughout. Serialized internally; listeners
  // fire after the new snapshot is published.
  std::shared_ptr<const Snapshot> Apply(const MutationBatch& batch);

  // Compacts the delta log into fresh COW segments and clears it. Pure
  // maintenance: the current snapshot (and its digest) are unchanged.
  void Seal();

  // One occurrence per live edge with its current weight, in an order that
  // makes Graph::FromEdges(EffectiveEdges(&w), &w) bit-identical to
  // Current()->graph(). `weights` is filled only for weighted stores
  // (pass nullptr for unweighted ones).
  std::vector<std::pair<int32_t, int32_t>> EffectiveEdges(
      std::vector<float>* weights = nullptr) const;

  // Mutation listeners, fired on the ingest thread after each Apply with
  // the new snapshot and the batch that produced it (serving uses this for
  // cache invalidation and plan revalidation). Remove with the returned id.
  using Listener =
      std::function<void(const std::shared_ptr<const Snapshot>&, const MutationBatch&)>;
  int64_t AddListener(Listener listener);
  void RemoveListener(int64_t id);

  bool weighted() const { return weighted_; }
  int64_t num_nodes() const { return num_nodes_; }
  GraphStoreStats stats() const;

 private:
  // Immutable CSC slice covering columns [begin_col, end_col).
  struct ColumnSegment {
    int64_t begin_col = 0;
    int64_t end_col = 0;
    std::vector<int64_t> offsets;  // local, size end_col - begin_col + 1
    std::vector<int32_t> indices;
    std::vector<float> weights;  // empty when unweighted
  };
  // Effective adjacency of one overlaid column: sorted (src, weight) pairs.
  using ColumnOverlay = std::vector<std::pair<int32_t, float>>;

  int64_t SegmentOf(int64_t col) const { return col / options_.segment_cols; }
  // Effective (src, weight) list for `col` (overlay if present, else the
  // sealed segment's slice). Requires mutex_ held.
  ColumnOverlay EffectiveColumnLocked(int64_t col) const;
  // Builds the full CSC from segments + overlay and stamps a Snapshot.
  // Requires mutex_ held.
  std::shared_ptr<const Snapshot> MaterializeLocked(uint64_t epoch, Graph features_from);
  void SealLocked();

  GraphStoreOptions options_;
  std::string name_;
  int64_t num_nodes_ = 0;
  bool weighted_ = false;
  bool uva_ = false;

  mutable std::mutex mutex_;
  std::vector<std::shared_ptr<const ColumnSegment>> segments_;
  std::map<int64_t, ColumnOverlay> overlay_;  // column -> effective adjacency
  std::vector<MutationBatch> delta_log_;
  std::shared_ptr<const Snapshot> current_;
  GraphStoreStats stats_;

  mutable std::mutex listener_mutex_;
  std::map<int64_t, Listener> listeners_;
  int64_t next_listener_id_ = 1;
};

}  // namespace gs::graph

#endif  // GSAMPLER_GRAPH_STORE_H_
