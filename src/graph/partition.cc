#include "graph/partition.h"

#include <algorithm>
#include <sstream>

#include "common/error.h"

namespace gs::graph {
namespace {

// Columns whose in-degree exceeds this multiple of the average are split
// across shards in the vertex-cut (power-law hubs).
constexpr double kVertexCutDegreeMultiple = 4.0;

// Contiguous node ranges balanced by per-node work (in-degree + 1, so
// zero-degree nodes still count toward the balance). Deterministic: shard s
// closes once its cumulative work reaches the proportional boundary, except
// that every remaining shard is guaranteed at least one column.
std::vector<int32_t> ContiguousOwners(const std::vector<int64_t>& work, int num_shards) {
  const int64_t n = static_cast<int64_t>(work.size());
  int64_t total = 0;
  for (int64_t w : work) {
    total += w;
  }
  std::vector<int32_t> owner(static_cast<size_t>(n), 0);
  int shard = 0;
  int64_t acc = 0;
  for (int64_t c = 0; c < n; ++c) {
    owner[static_cast<size_t>(c)] = shard;
    acc += work[static_cast<size_t>(c)];
    if (shard == num_shards - 1) {
      continue;
    }
    const int64_t remaining_cols = n - c - 1;
    const int64_t remaining_shards = num_shards - shard - 1;
    const int64_t boundary = (shard + 1) * total / num_shards;
    if (remaining_cols == remaining_shards ||
        (remaining_cols > remaining_shards && acc >= boundary)) {
      ++shard;
    }
  }
  return owner;
}

}  // namespace

const char* PartitionKindName(PartitionKind kind) {
  switch (kind) {
    case PartitionKind::kEdgeCut:
      return "edge-cut";
    case PartitionKind::kVertexCut:
      return "vertex-cut";
  }
  return "unknown";
}

int Partition::OwnerOf(int32_t global) const {
  GS_CHECK(global >= 0 && global < static_cast<int64_t>(owner_.size()))
      << "node id " << global << " out of range " << owner_.size();
  return owner_[static_cast<size_t>(global)];
}

const sparse::Matrix& Partition::Segment(int shard) const {
  GS_CHECK(shard >= 0 && shard < num_shards_) << "shard " << shard << " out of range";
  return segments_[static_cast<size_t>(shard)];
}

const std::vector<int32_t>& Partition::LocalNodes(int shard) const {
  GS_CHECK(shard >= 0 && shard < num_shards_) << "shard " << shard << " out of range";
  return locals_[static_cast<size_t>(shard)];
}

int32_t Partition::ToLocal(int shard, int32_t global) const {
  GS_CHECK(shard >= 0 && shard < num_shards_) << "shard " << shard << " out of range";
  const auto& map = to_local_[static_cast<size_t>(shard)];
  auto it = map.find(global);
  return it != map.end() ? it->second : -1;
}

int32_t Partition::ToGlobal(int shard, int32_t local) const {
  const std::vector<int32_t>& ids = LocalNodes(shard);
  GS_CHECK(local >= 0 && local < static_cast<int64_t>(ids.size()))
      << "local id " << local << " out of range " << ids.size();
  return ids[static_cast<size_t>(local)];
}

int Partition::HomeShard(const int32_t* ids, int64_t count) const {
  std::vector<int64_t> votes(static_cast<size_t>(num_shards_), 0);
  const int64_t n = static_cast<int64_t>(owner_.size());
  for (int64_t i = 0; i < count; ++i) {
    if (ids[i] < 0) {
      continue;  // walk dead-end marker
    }
    // Super-batch frontiers label node v of segment b as b*N + v.
    votes[static_cast<size_t>(owner_[static_cast<size_t>(ids[i] % n)])] += 1;
  }
  int best = 0;
  for (int s = 1; s < num_shards_; ++s) {
    if (votes[static_cast<size_t>(s)] > votes[static_cast<size_t>(best)]) {
      best = s;
    }
  }
  return best;
}

int64_t Partition::AdjBytes(int32_t global) const {
  GS_CHECK(global >= 0 && global < static_cast<int64_t>(degree_.size()))
      << "node id " << global << " out of range " << degree_.size();
  return degree_[static_cast<size_t>(global)] * bytes_per_edge_;
}

int Partition::ReplicaDevice(int shard, int r) const {
  GS_CHECK(shard >= 0 && shard < num_shards_) << "shard " << shard << " out of range";
  GS_CHECK(r >= 0 && r < num_replicas_) << "replica " << r << " out of range";
  return (shard + r) % num_shards_;
}

bool Partition::Hosts(int device, int shard) const {
  GS_CHECK(device >= 0 && device < num_shards_)
      << "device " << device << " out of range";
  GS_CHECK(shard >= 0 && shard < num_shards_) << "shard " << shard << " out of range";
  // device == (shard + r) % N for some r < num_replicas_.
  return (device - shard + num_shards_) % num_shards_ < num_replicas_;
}

int64_t Partition::SegmentBytes(int shard) const {
  return Segment(shard).nnz() * bytes_per_edge_;
}

int64_t Partition::RemoteBytesBound(int shard) const {
  GS_CHECK(shard >= 0 && shard < num_shards_) << "shard " << shard << " out of range";
  int64_t bytes = 0;
  for (size_t v = 0; v < owner_.size(); ++v) {
    if (owner_[v] != shard) {
      bytes += degree_[v] * bytes_per_edge_;
    }
  }
  return bytes;
}

std::string Partition::DebugString() const {
  std::ostringstream out;
  out << "Partition(" << PartitionKindName(kind_) << ", graph=" << graph_.name()
      << ", shards=" << num_shards_ << ", replicas=" << num_replicas_;
  for (int s = 0; s < num_shards_; ++s) {
    const sparse::Matrix& m = segments_[static_cast<size_t>(s)];
    out << ", s" << s << "=[cols=" << m.num_cols() << " nnz=" << m.nnz() << "]";
  }
  out << ")";
  return out.str();
}

Partition Partitioner::EdgeCut(const Graph& graph, int num_shards) {
  return Build(graph, PartitionKind::kEdgeCut, num_shards);
}

Partition Partitioner::VertexCut(const Graph& graph, int num_shards) {
  return Build(graph, PartitionKind::kVertexCut, num_shards);
}

Partition Partitioner::Build(const Graph& graph, PartitionKind kind, int num_shards,
                             int num_replicas) {
  const int64_t n = graph.num_nodes();
  GS_CHECK_GE(num_shards, 1) << "partition needs at least one shard";
  GS_CHECK_LE(num_shards, n) << "more shards than nodes";
  GS_CHECK_GE(num_replicas, 1) << "partition needs at least one replica";
  GS_CHECK_LE(num_replicas, num_shards)
      << "more replicas than devices (" << num_replicas << " > " << num_shards << ")";

  const sparse::Compressed& csc = graph.adj().Csc();
  const bool weighted = csc.values.defined();

  Partition p;
  p.graph_ = graph;
  p.kind_ = kind;
  p.num_shards_ = num_shards;
  p.num_replicas_ = num_replicas;
  p.bytes_per_edge_ =
      static_cast<int64_t>(sizeof(int32_t)) + (weighted ? static_cast<int64_t>(sizeof(float)) : 0);

  p.degree_.resize(static_cast<size_t>(n));
  std::vector<int64_t> work(static_cast<size_t>(n));
  for (int64_t c = 0; c < n; ++c) {
    p.degree_[static_cast<size_t>(c)] = csc.indptr[c + 1] - csc.indptr[c];
    work[static_cast<size_t>(c)] = p.degree_[static_cast<size_t>(c)] + 1;
  }
  p.owner_ = ContiguousOwners(work, num_shards);

  // Hub threshold for the vertex-cut: columns above it spill contiguous
  // edge chunks round-robin across shards, starting at the home shard.
  const double avg_degree =
      n > 0 ? static_cast<double>(graph.num_edges()) / static_cast<double>(n) : 0.0;
  const int64_t hub_threshold =
      std::max<int64_t>(8, static_cast<int64_t>(kVertexCutDegreeMultiple * avg_degree));

  // One builder per shard; columns are visited in ascending global order so
  // every segment's col_ids come out sorted.
  struct Builder {
    std::vector<int64_t> indptr{0};
    std::vector<int32_t> indices;
    std::vector<float> values;
    std::vector<int32_t> cols;
  };
  std::vector<Builder> builders(static_cast<size_t>(num_shards));
  std::vector<std::vector<std::pair<int32_t, float>>> per_shard(
      static_cast<size_t>(num_shards));

  for (int64_t c = 0; c < n; ++c) {
    const int32_t home = p.owner_[static_cast<size_t>(c)];
    const int64_t deg = p.degree_[static_cast<size_t>(c)];
    for (auto& edges : per_shard) {
      edges.clear();
    }
    const bool split =
        kind == PartitionKind::kVertexCut && num_shards > 1 && deg > hub_threshold;
    // Chunk size for split columns: ceil(deg / num_shards), so a hub's
    // adjacency spreads over every shard.
    const int64_t chunk = split ? (deg + num_shards - 1) / num_shards : deg;
    for (int64_t j = 0; j < deg; ++j) {
      const int owner =
          split ? static_cast<int>((home + j / chunk) % num_shards) : home;
      const int64_t e = csc.indptr[c] + j;
      per_shard[static_cast<size_t>(owner)].emplace_back(
          csc.indices[e], weighted ? csc.values[e] : 0.0f);
    }
    for (int s = 0; s < num_shards; ++s) {
      auto& edges = per_shard[static_cast<size_t>(s)];
      if (edges.empty() && s != home) {
        continue;  // only the master materializes an empty column
      }
      Builder& b = builders[static_cast<size_t>(s)];
      b.cols.push_back(static_cast<int32_t>(c));
      for (const auto& [row, value] : edges) {
        b.indices.push_back(row);
        if (weighted) {
          b.values.push_back(value);
        }
      }
      b.indptr.push_back(static_cast<int64_t>(b.indices.size()));
    }
  }

  p.segments_.reserve(static_cast<size_t>(num_shards));
  p.locals_.reserve(static_cast<size_t>(num_shards));
  p.to_local_.resize(static_cast<size_t>(num_shards));
  for (int s = 0; s < num_shards; ++s) {
    Builder& b = builders[static_cast<size_t>(s)];
    sparse::Compressed seg;
    seg.indptr = sparse::OffsetArray::FromVector(b.indptr);
    seg.indices = sparse::IdArray::FromVector(b.indices);
    if (weighted) {
      seg.values = sparse::ValueArray::FromVector(b.values);
    }
    sparse::Matrix m = sparse::Matrix::FromCsc(
        n, static_cast<int64_t>(b.cols.size()), std::move(seg));
    m.SetColIds(sparse::IdArray::FromVector(b.cols));
    p.segments_.push_back(std::move(m));
    auto& map = p.to_local_[static_cast<size_t>(s)];
    map.reserve(b.cols.size());
    for (size_t i = 0; i < b.cols.size(); ++i) {
      map.emplace(b.cols[i], static_cast<int32_t>(i));
    }
    p.locals_.push_back(std::move(b.cols));
  }
  return p;
}

Partition Partitioner::Rebuild(const Partition& base, const Graph& graph,
                               const std::vector<int32_t>& touched_cols) {
  GS_CHECK_EQ(graph.num_nodes(), static_cast<int64_t>(base.owner_.size()))
      << "Rebuild requires an unchanged node count";
  if (base.kind_ == PartitionKind::kVertexCut) {
    Partition p = Build(graph, base.kind_, base.num_shards_, base.num_replicas_);
    p.segments_rebuilt_ = base.num_shards_;
    return p;
  }

  const sparse::Compressed& csc = graph.adj().Csc();
  const bool weighted = csc.values.defined();

  Partition p = base;  // shares every segment until rebuilt below
  p.graph_ = graph;
  p.segments_rebuilt_ = 0;
  p.segments_reused_ = 0;

  std::vector<bool> dirty(static_cast<size_t>(base.num_shards_), false);
  for (int32_t c : touched_cols) {
    dirty[static_cast<size_t>(base.OwnerOf(c))] = true;
    p.degree_[static_cast<size_t>(c)] = csc.indptr[c + 1] - csc.indptr[c];
  }

  for (int s = 0; s < base.num_shards_; ++s) {
    if (!dirty[static_cast<size_t>(s)]) {
      ++p.segments_reused_;
      continue;
    }
    // Edge-cut: the shard's columns are exactly its owned nodes, unchanged
    // by the mutation (ownership is pinned), so locals_/to_local_ carry
    // over and only the CSC payload is re-sliced from the new graph.
    const std::vector<int32_t>& cols = base.locals_[static_cast<size_t>(s)];
    std::vector<int64_t> indptr{0};
    std::vector<int32_t> indices;
    std::vector<float> values;
    indptr.reserve(cols.size() + 1);
    for (int32_t c : cols) {
      for (int64_t e = csc.indptr[c]; e < csc.indptr[c + 1]; ++e) {
        indices.push_back(csc.indices[e]);
        if (weighted) {
          values.push_back(csc.values[e]);
        }
      }
      indptr.push_back(static_cast<int64_t>(indices.size()));
    }
    sparse::Compressed seg;
    seg.indptr = sparse::OffsetArray::FromVector(indptr);
    seg.indices = sparse::IdArray::FromVector(indices);
    if (weighted) {
      seg.values = sparse::ValueArray::FromVector(values);
    }
    sparse::Matrix m = sparse::Matrix::FromCsc(
        graph.num_nodes(), static_cast<int64_t>(cols.size()), std::move(seg));
    m.SetColIds(sparse::IdArray::FromVector(cols));
    p.segments_[static_cast<size_t>(s)] = std::move(m);
    ++p.segments_rebuilt_;
  }
  return p;
}

}  // namespace gs::graph
