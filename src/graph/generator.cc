#include "graph/generator.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/error.h"
#include "common/rng.h"

namespace gs::graph {
namespace {

int64_t CeilPow2(int64_t n) {
  int64_t p = 1;
  while (p < n) {
    p *= 2;
  }
  return p;
}

// Gaussian features plus, when labels are provided, a per-community signal
// in a dedicated coordinate block so the labels are learnable.
tensor::Tensor MakeFeatures(int64_t num_nodes, int dim, const device::Array<int32_t>* labels,
                            int num_classes, float noise, Rng& rng,
                            device::MemorySpace space = device::MemorySpace::kDevice) {
  tensor::Tensor f = tensor::Tensor::Empty({num_nodes, dim}, space);
  for (int64_t i = 0; i < f.numel(); ++i) {
    f.at(i) = static_cast<float>(rng.Gaussian()) * noise;
  }
  if (labels != nullptr) {
    GS_CHECK_LE(num_classes, dim) << "feature_dim must be >= num_communities";
    for (int64_t v = 0; v < num_nodes; ++v) {
      f.at(v, (*labels)[v]) += 2.0f;
    }
  }
  return f;
}

device::Array<int32_t> SampleFrontiers(int64_t num_nodes, double fraction, Rng& rng) {
  if (fraction >= 1.0) {
    device::Array<int32_t> ids = device::Array<int32_t>::Empty(num_nodes);
    for (int64_t v = 0; v < num_nodes; ++v) {
      ids[v] = static_cast<int32_t>(v);
    }
    return ids;
  }
  const int64_t count = std::max<int64_t>(1, static_cast<int64_t>(
                                                 static_cast<double>(num_nodes) * fraction));
  std::vector<int32_t> picked;
  picked.reserve(static_cast<size_t>(count));
  // Deterministic reservoir-free pick: step through with random offsets.
  std::vector<uint8_t> used(static_cast<size_t>(num_nodes), 0);
  while (static_cast<int64_t>(picked.size()) < count) {
    const int64_t v = static_cast<int64_t>(rng.UniformInt(static_cast<uint64_t>(num_nodes)));
    if (used[static_cast<size_t>(v)] == 0) {
      used[static_cast<size_t>(v)] = 1;
      picked.push_back(static_cast<int32_t>(v));
    }
  }
  std::sort(picked.begin(), picked.end());
  return device::Array<int32_t>::FromVector(picked);
}

}  // namespace

Graph MakeRMatGraph(const RMatParams& params) {
  GS_CHECK_GT(params.num_nodes, 1);
  Rng rng(params.seed);
  const int64_t scale_nodes = CeilPow2(params.num_nodes);
  const int levels = static_cast<int>(std::log2(static_cast<double>(scale_nodes)));

  std::vector<std::pair<int32_t, int32_t>> edges;
  edges.reserve(static_cast<size_t>(params.num_edges) * (params.undirected ? 2 : 1));
  std::vector<float> weights;
  if (params.weighted) {
    weights.reserve(edges.capacity());
  }

  const double ab = params.a + params.b;
  const double abc = params.a + params.b + params.c;
  for (int64_t e = 0; e < params.num_edges; ++e) {
    int64_t src = 0;
    int64_t dst = 0;
    for (int level = 0; level < levels; ++level) {
      const double r = rng.Uniform();
      src <<= 1;
      dst <<= 1;
      if (r >= ab) {
        src |= 1;
      }
      if (r >= params.a && (r < ab || r >= abc)) {
        dst |= 1;
      }
    }
    // Fold the power-of-two id space down onto [0, num_nodes).
    src %= params.num_nodes;
    dst %= params.num_nodes;
    if (src == dst) {
      continue;
    }
    const float w =
        params.weighted ? 0.5f + rng.UniformF() : 0.0f;  // uniform(0.5, 1.5)
    edges.emplace_back(static_cast<int32_t>(src), static_cast<int32_t>(dst));
    if (params.weighted) {
      weights.push_back(w);
    }
    if (params.undirected) {
      edges.emplace_back(static_cast<int32_t>(dst), static_cast<int32_t>(src));
      if (params.weighted) {
        weights.push_back(w);
      }
    }
  }

  Graph g = Graph::FromEdges(params.name, params.num_nodes, std::move(edges),
                             params.weighted ? &weights : nullptr, params.uva);
  Rng feature_rng = rng.Fork(1);
  // UVA-resident graphs keep their features in host memory too (gathers
  // charge PCIe).
  g.SetFeatures(MakeFeatures(params.num_nodes, params.feature_dim, nullptr, 0, 1.0f,
                             feature_rng,
                             params.uva ? device::MemorySpace::kHost
                                        : device::MemorySpace::kDevice));
  Rng frontier_rng = rng.Fork(2);
  g.SetTrainIds(SampleFrontiers(params.num_nodes, params.frontier_fraction, frontier_rng));
  return g;
}

Graph MakePlantedPartitionGraph(const PlantedPartitionParams& params) {
  GS_CHECK_GT(params.num_communities, 1);
  Rng rng(params.seed);
  const int64_t n = params.num_nodes;
  const int c = params.num_communities;

  device::Array<int32_t> labels = device::Array<int32_t>::Empty(n);
  for (int64_t v = 0; v < n; ++v) {
    labels[v] = static_cast<int32_t>(rng.UniformInt(static_cast<uint64_t>(c)));
  }
  // Bucket nodes by community for intra-community edge endpoints.
  std::vector<std::vector<int32_t>> members(static_cast<size_t>(c));
  for (int64_t v = 0; v < n; ++v) {
    members[static_cast<size_t>(labels[v])].push_back(static_cast<int32_t>(v));
  }

  std::vector<std::pair<int32_t, int32_t>> edges;
  std::vector<float> weights;
  const int64_t intra_total = static_cast<int64_t>(params.intra_degree * static_cast<double>(n));
  const int64_t inter_total = static_cast<int64_t>(params.inter_degree * static_cast<double>(n));
  edges.reserve(static_cast<size_t>(2 * (intra_total + inter_total)));

  for (int64_t e = 0; e < intra_total; ++e) {
    const int64_t v = static_cast<int64_t>(rng.UniformInt(static_cast<uint64_t>(n)));
    const auto& bucket = members[static_cast<size_t>(labels[v])];
    if (bucket.size() < 2) {
      continue;
    }
    const int32_t u = bucket[rng.UniformInt(bucket.size())];
    edges.emplace_back(static_cast<int32_t>(v), u);
    edges.emplace_back(u, static_cast<int32_t>(v));
  }
  for (int64_t e = 0; e < inter_total; ++e) {
    const int64_t v = static_cast<int64_t>(rng.UniformInt(static_cast<uint64_t>(n)));
    const int64_t u = static_cast<int64_t>(rng.UniformInt(static_cast<uint64_t>(n)));
    edges.emplace_back(static_cast<int32_t>(v), static_cast<int32_t>(u));
    edges.emplace_back(static_cast<int32_t>(u), static_cast<int32_t>(v));
  }
  if (params.weighted) {
    weights.resize(edges.size());
    for (float& w : weights) {
      w = 0.5f + rng.UniformF();
    }
  }

  Graph g = Graph::FromEdges(params.name, n, std::move(edges),
                             params.weighted ? &weights : nullptr, /*uva=*/false);
  g.SetLabels(labels, c);
  Rng feature_rng = rng.Fork(1);
  g.SetFeatures(MakeFeatures(n, params.feature_dim, &g.labels(), c, params.feature_noise,
                             feature_rng));
  Rng frontier_rng = rng.Fork(2);
  g.SetTrainIds(SampleFrontiers(n, 1.0, frontier_rng));
  return g;
}

}  // namespace gs::graph
