// Scaled-down synthetic analogues of the paper's evaluation graphs
// (Table 6). The generator parameters preserve the properties the
// evaluation depends on: relative sizes, degree skew, PD's high average
// degree, residency (PP/FS exceed simulated device memory and use UVA), and
// FS's 1% frontier sampling (Section 5.1). Absolute sizes are scaled to
// single-core runtime budgets; see DESIGN.md.

#ifndef GSAMPLER_GRAPH_DATASETS_H_
#define GSAMPLER_GRAPH_DATASETS_H_

#include <string>
#include <vector>

#include "graph/graph.h"

namespace gs::graph {

// Dataset scale knob: 1.0 = the default benchmark sizes. Tests use smaller
// scales for speed.
struct DatasetOptions {
  double scale = 1.0;
  bool weighted = true;  // LADIES/AS-GCN need edge weights
};

// "LJ": LiveJournal analogue — directed social graph.
Graph MakeLJ(const DatasetOptions& options = {});
// "PD": Ogbn-Products analogue — undirected, highest average degree.
Graph MakePD(const DatasetOptions& options = {});
// "PP": Ogbn-Papers100M analogue — large, directed, UVA-resident.
Graph MakePP(const DatasetOptions& options = {});
// "FS": Friendster analogue — large, undirected, UVA-resident, 1% frontiers.
Graph MakeFS(const DatasetOptions& options = {});

// Lookup by abbreviation ("LJ", "PD", "PP", "FS").
Graph MakeDataset(const std::string& abbr, const DatasetOptions& options = {});

// The four benchmark datasets in paper order.
std::vector<std::string> BenchmarkDatasetNames();

}  // namespace gs::graph

#endif  // GSAMPLER_GRAPH_DATASETS_H_
