// Virtual-clock execution stream.
//
// Every sparse/tensor operator in this repository executes as a "kernel"
// bracketed by a KernelScope. The scope measures the real CPU time of the
// operator body, then advances the stream's virtual clock by the simulated
// device cost (see device/profile.h) and updates resource counters:
// launches, HBM/PCIe bytes, and the time-weighted SM-occupancy proxy that
// backs Table 9's SM% column.
//
// Benchmarks report *virtual* time deltas; correctness code ignores time.

#ifndef GSAMPLER_DEVICE_STREAM_H_
#define GSAMPLER_DEVICE_STREAM_H_

#include <cstdint>
#include <string>
#include <utility>

#include "common/timer.h"
#include "device/profile.h"

namespace gs::device {

// Per-kernel cost inputs reported by the operator implementation.
struct KernelStats {
  // Regular dense kernel (GEMM-like): charged at the profile's
  // dense_compute_scale instead of the irregular-kernel rate. Declared
  // first so designated initializers may combine it with the other fields.
  bool dense = false;
  // Work items that could run concurrently (edges touched, rows processed,
  // ...). Drives the SM-occupancy proxy.
  int64_t parallel_items = 1;
  // Bytes moved through simulated device memory (reads + writes).
  int64_t hbm_bytes = 0;
  // Bytes gathered from host memory via UVA.
  int64_t pcie_bytes = 0;
};

struct StreamCounters {
  int64_t kernels_launched = 0;
  int64_t virtual_ns = 0;  // simulated device time
  int64_t cpu_ns = 0;      // raw measured host time
  int64_t hbm_bytes = 0;
  int64_t pcie_bytes = 0;
  // sum over kernels of occupancy * kernel_virtual_ns; SM% = this / virtual_ns
  double occupancy_ns = 0.0;

  double SmUtilizationPercent() const {
    return virtual_ns > 0 ? 100.0 * occupancy_ns / static_cast<double>(virtual_ns) : 0.0;
  }
};

class Stream {
 public:
  explicit Stream(DeviceProfile profile) : profile_(std::move(profile)) {}

  const StreamCounters& counters() const { return counters_; }
  void ResetCounters() { counters_ = StreamCounters{}; }
  const DeviceProfile& profile() const { return profile_; }

  // Records one completed kernel; called by KernelScope.
  void RecordKernel(int64_t cpu_ns, const KernelStats& stats);

 private:
  DeviceProfile profile_;
  StreamCounters counters_;
};

// RAII bracket around one kernel body.
//
//   KernelScope k(stream);
//   ... operator body ...
//   k.Finish({.parallel_items = nnz, .hbm_bytes = bytes});
//
// If Finish is not called the destructor records with default stats.
class KernelScope {
 public:
  explicit KernelScope(Stream& stream) : stream_(&stream) {}

  ~KernelScope() {
    if (!finished_) {
      Finish(KernelStats{});
    }
  }

  KernelScope(const KernelScope&) = delete;
  KernelScope& operator=(const KernelScope&) = delete;

  void Finish(const KernelStats& stats) {
    stream_->RecordKernel(timer_.ElapsedNanos(), stats);
    finished_ = true;
  }

 private:
  Stream* stream_;
  gs::Timer timer_;
  bool finished_ = false;
};

}  // namespace gs::device

#endif  // GSAMPLER_DEVICE_STREAM_H_
