// Virtual-clock execution stream.
//
// Every sparse/tensor operator in this repository executes as a "kernel"
// bracketed by a KernelScope. The scope measures the real CPU time of the
// operator body, then advances the stream's virtual clock by the simulated
// device cost (see device/profile.h) and updates resource counters:
// launches, HBM/PCIe bytes, and the time-weighted SM-occupancy proxy that
// backs Table 9's SM% column.
//
// Streams are asynchronous in the CUDA sense: each stream carries its own
// virtual *timeline* (`now_ns`), completion is observed through Event
// objects recorded on one stream and waited on by another, and
// `Synchronize()` reports the timeline position at which all work submitted
// so far has completed. The pipeline executor (src/pipeline/) runs each
// stage on its own stream so overlapped stages advance independent
// timelines; cross-stage data dependencies become event waits, which is what
// makes a pipelined epoch's simulated makespan shorter than the sum of the
// per-stage busy times.
//
// All counters are atomics: concurrent pipeline stages record kernels on
// their own streams, but metrics snapshots (and the merged device totals)
// are read from other threads.
//
// Benchmarks report *virtual* time deltas; correctness code ignores time.

#ifndef GSAMPLER_DEVICE_STREAM_H_
#define GSAMPLER_DEVICE_STREAM_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <utility>

#include "common/timer.h"
#include "device/profile.h"

namespace gs::device {

// Per-kernel cost inputs reported by the operator implementation.
struct KernelStats {
  // Regular dense kernel (GEMM-like): charged at the profile's
  // dense_compute_scale instead of the irregular-kernel rate. Declared
  // first so designated initializers may combine it with the other fields.
  bool dense = false;
  // Work items that could run concurrently (edges touched, rows processed,
  // ...). Drives the SM-occupancy proxy.
  int64_t parallel_items = 1;
  // Bytes moved through simulated device memory (reads + writes).
  int64_t hbm_bytes = 0;
  // Bytes gathered from host memory via UVA.
  int64_t pcie_bytes = 0;
  // Bytes exchanged with peer shards over the device-to-device interconnect
  // (the coalesced all-to-all of shard::FrontierExchange).
  int64_t interconnect_bytes = 0;
  // Bytes read from host DRAM (feature rows missing the hot-set cache).
  // Charged at host_read_ns_per_byte on top of any PCIe charge — a UVA
  // gather pays the host memory controller and the bus. Declared last so
  // older designated initializers stay valid.
  int64_t host_bytes = 0;
};

// A point on a stream's virtual timeline: all work submitted to the stream
// before RecordEvent() has completed by `ready_at_ns`. Plain value type —
// safe to pass between threads.
struct Event {
  int64_t ready_at_ns = 0;
};

// How a timeline stall should be attributed in the counters (the pipeline
// distinguishes waiting for upstream data from waiting for a downstream
// queue slot).
enum class StallKind {
  kStarved,       // producer-starved: waiting on an upstream event
  kBackpressure,  // consumer-backpressured: waiting for a queue slot
};

// Snapshot of a stream's accumulated counters. `virtual_ns` is *busy*
// simulated time; `timeline_ns` is the stream's current timeline position
// (busy time plus event-wait stalls plus any AlignTo jumps).
struct StreamCounters {
  int64_t kernels_launched = 0;
  int64_t virtual_ns = 0;  // simulated device busy time
  int64_t cpu_ns = 0;      // raw measured host time
  int64_t model_ns = 0;    // deterministic cost model (no measured time)
  int64_t hbm_bytes = 0;
  int64_t pcie_bytes = 0;
  int64_t interconnect_bytes = 0;  // shard-to-shard all-to-all traffic
  int64_t host_bytes = 0;          // host-DRAM reads (feature-gather misses)
  int64_t timeline_ns = 0;         // current virtual timeline position
  int64_t starved_ns = 0;          // stalls waiting on upstream events
  int64_t backpressure_ns = 0;     // stalls waiting on downstream slots
  int64_t stuck_kernels = 0;       // kernels flagged by the watchdog
  // sum over kernels of occupancy * kernel_virtual_ns; SM% = this / virtual_ns
  double occupancy_ns = 0.0;

  double SmUtilizationPercent() const {
    return virtual_ns > 0 ? 100.0 * occupancy_ns / static_cast<double>(virtual_ns) : 0.0;
  }
};

class Stream {
 public:
  explicit Stream(DeviceProfile profile) : profile_(std::move(profile)) {
    profile_.Validate();
  }

  // Streams own atomic counters and a timeline; they are not copyable.
  Stream(const Stream&) = delete;
  Stream& operator=(const Stream&) = delete;

  StreamCounters counters() const;
  void ResetCounters();
  const DeviceProfile& profile() const { return profile_; }

  // Records one completed kernel; called by KernelScope. Thread-safe.
  void RecordKernel(int64_t cpu_ns, const KernelStats& stats);

  // Current virtual timeline position.
  int64_t now_ns() const { return now_ns_.load(std::memory_order_relaxed); }

  // Marks a completion point: all work submitted so far is done by the
  // returned event's timestamp.
  Event RecordEvent() const { return Event{now_ns()}; }

  // Advances this stream's timeline to the event's completion time (no-op
  // if already past it); the jump is charged as stall time of the given
  // kind. The analogue of cudaStreamWaitEvent.
  void WaitEvent(const Event& event, StallKind kind);

  // Virtual completion timestamp of all submitted work. In the simulation
  // every kernel's cost is known at submission, so synchronizing is
  // observing the timeline rather than blocking.
  int64_t Synchronize() const { return now_ns(); }

  // Jumps the timeline forward to `origin_ns` without charging stall time.
  // Used when a fresh stage stream joins an epoch already in progress.
  void AlignTo(int64_t origin_ns);

  // Folds a concurrent child stream's counters into this stream after the
  // child's work (overlapped with other children) completed: resource
  // counters add, but busy/timeline advance only by `elapsed_virtual_ns`,
  // the overlapped makespan — which is the point of pipelining.
  void MergeOverlapped(const StreamCounters& child, int64_t elapsed_virtual_ns);

  // Watchdog: RecordKernel flags any kernel whose charged virtual time
  // exceeds profile().watchdog_multiple × the profile's own estimate for
  // its stats (only fault injection can cause that; see src/fault/).
  // TakeStuckKernels drains the pending-flag count — the core executor
  // polls it after each program node and cancels the batch with a
  // transient error when nonzero.
  int64_t TakeStuckKernels() { return stuck_pending_.exchange(0, std::memory_order_relaxed); }

 private:
  DeviceProfile profile_;
  std::atomic<int64_t> kernels_launched_{0};
  std::atomic<int64_t> virtual_ns_{0};
  std::atomic<int64_t> cpu_ns_{0};
  std::atomic<int64_t> model_ns_{0};
  std::atomic<int64_t> hbm_bytes_{0};
  std::atomic<int64_t> pcie_bytes_{0};
  std::atomic<int64_t> interconnect_bytes_{0};
  std::atomic<int64_t> host_bytes_{0};
  std::atomic<int64_t> now_ns_{0};
  std::atomic<int64_t> starved_ns_{0};
  std::atomic<int64_t> backpressure_ns_{0};
  std::atomic<int64_t> stuck_kernels_{0};
  std::atomic<int64_t> stuck_pending_{0};
  std::atomic<double> occupancy_ns_{0.0};
};

// RAII bracket around one kernel body.
//
//   KernelScope k(stream);
//   ... operator body ...
//   k.Finish({.parallel_items = nnz, .hbm_bytes = bytes});
//
// If Finish is not called the destructor records with default stats.
// Measures per-thread CPU time so concurrent pipeline stages sharing cores
// do not inflate each other's simulated kernel costs.
//
// The constructor is the kernel.transient injection site: under an active
// fault::FaultScope it may throw fault::TransientError, modeling a launch
// failure. Injection never happens in the destructor — a scope that is
// unwinding records default stats and must not throw.
class KernelScope {
 public:
  // Throws fault::TransientError when a kernel.transient fault fires.
  explicit KernelScope(Stream& stream);

  ~KernelScope() {
    if (!finished_) {
      Finish(KernelStats{});
    }
  }

  KernelScope(const KernelScope&) = delete;
  KernelScope& operator=(const KernelScope&) = delete;

  void Finish(const KernelStats& stats) {
    stream_->RecordKernel(timer_.ElapsedNanos(), stats);
    finished_ = true;
  }

 private:
  Stream* stream_;
  gs::ThreadCpuTimer timer_;
  bool finished_ = false;
};

}  // namespace gs::device

#endif  // GSAMPLER_DEVICE_STREAM_H_
