// Device context: profile + allocator + default stream.
//
// Mirrors CUDA's "current device" model: operators allocate from and launch
// on the current device, which callers switch with DeviceGuard. The default
// device is a V100Sim instance created on first use.

#ifndef GSAMPLER_DEVICE_DEVICE_H_
#define GSAMPLER_DEVICE_DEVICE_H_

#include <atomic>
#include <memory>

#include "device/allocator.h"
#include "device/profile.h"
#include "device/stream.h"

namespace gs::device {

class Device {
 public:
  explicit Device(DeviceProfile profile)
      : profile_(std::move(profile)),
        allocator_(profile_.memory_capacity_bytes),
        stream_(profile_) {}

  Device(const Device&) = delete;
  Device& operator=(const Device&) = delete;

  const DeviceProfile& profile() const { return profile_; }
  CachingAllocator& allocator() { return allocator_; }
  // The stream work on this thread records to: the thread's StreamGuard
  // override if one is active (pipeline stage workers), else the device's
  // default stream. Mirrors CUDA's per-thread current stream.
  Stream& stream();
  Stream& default_stream() { return stream_; }

  // Simulated device-lost latch (the shard.lost fault site): a lost device
  // models a GPU that fell off the interconnect. The HA layer marks it on
  // injection, routes work to replicas while it is set, and Revives it when
  // a health probe succeeds. Purely advisory — kernels on a lost device
  // still "run" (this is a simulator); placement honors the latch.
  void MarkLost() { lost_.store(true, std::memory_order_release); }
  void Revive() { lost_.store(false, std::memory_order_release); }
  bool lost() const { return lost_.load(std::memory_order_acquire); }

 private:
  DeviceProfile profile_;
  CachingAllocator allocator_;
  Stream stream_;
  std::atomic<bool> lost_{false};
};

// The device new work runs on: the calling thread's override if one is
// active (shard workers), else the process-global current device. Never
// null.
Device& Current();
// Replaces the process-global current device; returns the previous one (may
// be null for the implicit default).
Device* SetCurrent(Device* device);

// Replaces the calling thread's device override (nullptr clears it);
// returns the previous override. Unlike SetCurrent this affects only the
// calling thread — a ShardGroup worker pins its shard's device here while
// other shards run concurrently on theirs.
Device* SetThreadDevice(Device* device);

// Replaces the calling thread's stream override (nullptr clears it);
// returns the previous override.
Stream* SetThreadStream(Stream* stream);

// Scoped per-thread stream override. Pipeline stage workers install their
// stage stream so every kernel the stage runs is recorded on — and advances
// the timeline of — that stream.
class StreamGuard {
 public:
  explicit StreamGuard(Stream& stream) : previous_(SetThreadStream(&stream)) {}
  ~StreamGuard() { SetThreadStream(previous_); }

  StreamGuard(const StreamGuard&) = delete;
  StreamGuard& operator=(const StreamGuard&) = delete;

 private:
  Stream* previous_;
};

// Scoped per-thread device override. Shard workers install their shard's
// device so allocations and kernels on this thread hit that shard's
// allocator and streams, concurrently with other shards' threads — the
// process-global DeviceGuard cannot express that.
class ThreadDeviceGuard {
 public:
  explicit ThreadDeviceGuard(Device& device) : previous_(SetThreadDevice(&device)) {}
  ~ThreadDeviceGuard() { SetThreadDevice(previous_); }

  ThreadDeviceGuard(const ThreadDeviceGuard&) = delete;
  ThreadDeviceGuard& operator=(const ThreadDeviceGuard&) = delete;

 private:
  Device* previous_;
};

// Scoped switch of the process-global current device.
class DeviceGuard {
 public:
  explicit DeviceGuard(Device& device) : previous_(SetCurrent(&device)) {}
  ~DeviceGuard() { SetCurrent(previous_); }

  DeviceGuard(const DeviceGuard&) = delete;
  DeviceGuard& operator=(const DeviceGuard&) = delete;

 private:
  Device* previous_;
};

}  // namespace gs::device

#endif  // GSAMPLER_DEVICE_DEVICE_H_
