#include "device/stream.h"

#include <algorithm>

namespace gs::device {

void Stream::RecordKernel(int64_t cpu_ns, const KernelStats& stats) {
  const DeviceProfile& p = profile_;
  double virtual_ns = static_cast<double>(cpu_ns) * p.compute_scale *
                      (stats.dense ? p.dense_compute_scale : 1.0);
  virtual_ns += static_cast<double>(p.launch_overhead_ns);
  virtual_ns += static_cast<double>(stats.hbm_bytes) * p.hbm_penalty_ns_per_byte;
  virtual_ns += static_cast<double>(stats.pcie_bytes) * p.pcie_ns_per_byte;

  const double occupancy =
      std::min(1.0, static_cast<double>(std::max<int64_t>(stats.parallel_items, 1)) /
                        static_cast<double>(p.sm_saturation_items));

  ++counters_.kernels_launched;
  counters_.cpu_ns += cpu_ns;
  counters_.virtual_ns += static_cast<int64_t>(virtual_ns);
  counters_.hbm_bytes += stats.hbm_bytes;
  counters_.pcie_bytes += stats.pcie_bytes;
  counters_.occupancy_ns += occupancy * virtual_ns;
}

}  // namespace gs::device
