#include "device/stream.h"

#include <algorithm>

#include "fault/fault.h"
#include "fault/status.h"

namespace gs::device {
namespace {

// All counter updates use relaxed ordering: counters are statistics, and
// cross-thread happens-before for the values they describe is provided by
// the pipeline queues' mutexes.
constexpr std::memory_order kRelaxed = std::memory_order_relaxed;

// Atomic max for the timeline (compare-exchange loop; timelines only move
// forward).
int64_t FetchMax(std::atomic<int64_t>& target, int64_t value) {
  int64_t observed = target.load(kRelaxed);
  while (observed < value && !target.compare_exchange_weak(observed, value, kRelaxed)) {
  }
  return observed;
}

}  // namespace

void Stream::RecordKernel(int64_t cpu_ns, const KernelStats& stats) {
  const DeviceProfile& p = profile_;
  const double memory_ns =
      static_cast<double>(p.launch_overhead_ns) +
      static_cast<double>(stats.hbm_bytes) * p.hbm_penalty_ns_per_byte +
      static_cast<double>(stats.pcie_bytes) * p.pcie_ns_per_byte +
      static_cast<double>(stats.interconnect_bytes) * p.interconnect_ns_per_byte +
      static_cast<double>(stats.host_bytes) * p.host_read_ns_per_byte;
  const double compute_factor = p.compute_scale * (stats.dense ? p.dense_compute_scale : 1.0);
  double virtual_ns = static_cast<double>(cpu_ns) * compute_factor + memory_ns;
  // Deterministic twin of the virtual clock: compute charged per work item
  // instead of from measured host time. Plan-time calibration ranks layout
  // candidates by this counter so plans cannot depend on timing noise.
  const double model_ns =
      static_cast<double>(std::max<int64_t>(stats.parallel_items, 1)) *
          p.model_compute_ns_per_item * compute_factor +
      memory_ns;

  const double occupancy =
      std::min(1.0, static_cast<double>(std::max<int64_t>(stats.parallel_items, 1)) /
                        static_cast<double>(p.sm_saturation_items));

  // kernel.stuck injection: charge the timeline as if the kernel ran
  // `multiplier`× longer than the profile predicts. The watchdog compares
  // the charge against the clean estimate, so an inflated kernel is
  // flagged for the executor to cancel.
  const double estimate_ns = virtual_ns;
  const double multiplier = fault::StuckMultiplier();
  if (multiplier > 1.0) {
    virtual_ns *= multiplier;
  }
  if (p.watchdog_multiple > 0.0 &&
      virtual_ns > p.watchdog_multiple * std::max(estimate_ns, 1.0)) {
    stuck_kernels_.fetch_add(1, kRelaxed);
    stuck_pending_.fetch_add(1, kRelaxed);
  }

  const int64_t v = static_cast<int64_t>(virtual_ns);
  kernels_launched_.fetch_add(1, kRelaxed);
  cpu_ns_.fetch_add(cpu_ns, kRelaxed);
  model_ns_.fetch_add(static_cast<int64_t>(model_ns), kRelaxed);
  virtual_ns_.fetch_add(v, kRelaxed);
  now_ns_.fetch_add(v, kRelaxed);
  hbm_bytes_.fetch_add(stats.hbm_bytes, kRelaxed);
  pcie_bytes_.fetch_add(stats.pcie_bytes, kRelaxed);
  interconnect_bytes_.fetch_add(stats.interconnect_bytes, kRelaxed);
  host_bytes_.fetch_add(stats.host_bytes, kRelaxed);
  occupancy_ns_.fetch_add(occupancy * virtual_ns, kRelaxed);
}

void Stream::WaitEvent(const Event& event, StallKind kind) {
  const int64_t before = FetchMax(now_ns_, event.ready_at_ns);
  const int64_t jump = event.ready_at_ns - before;
  if (jump <= 0) {
    return;
  }
  (kind == StallKind::kStarved ? starved_ns_ : backpressure_ns_).fetch_add(jump, kRelaxed);
}

void Stream::AlignTo(int64_t origin_ns) { FetchMax(now_ns_, origin_ns); }

void Stream::MergeOverlapped(const StreamCounters& child, int64_t elapsed_virtual_ns) {
  kernels_launched_.fetch_add(child.kernels_launched, kRelaxed);
  cpu_ns_.fetch_add(child.cpu_ns, kRelaxed);
  model_ns_.fetch_add(child.model_ns, kRelaxed);
  hbm_bytes_.fetch_add(child.hbm_bytes, kRelaxed);
  pcie_bytes_.fetch_add(child.pcie_bytes, kRelaxed);
  interconnect_bytes_.fetch_add(child.interconnect_bytes, kRelaxed);
  host_bytes_.fetch_add(child.host_bytes, kRelaxed);
  occupancy_ns_.fetch_add(child.occupancy_ns, kRelaxed);
  stuck_kernels_.fetch_add(child.stuck_kernels, kRelaxed);
  virtual_ns_.fetch_add(elapsed_virtual_ns, kRelaxed);
  now_ns_.fetch_add(elapsed_virtual_ns, kRelaxed);
}

StreamCounters Stream::counters() const {
  StreamCounters c;
  c.kernels_launched = kernels_launched_.load(kRelaxed);
  c.virtual_ns = virtual_ns_.load(kRelaxed);
  c.cpu_ns = cpu_ns_.load(kRelaxed);
  c.model_ns = model_ns_.load(kRelaxed);
  c.hbm_bytes = hbm_bytes_.load(kRelaxed);
  c.pcie_bytes = pcie_bytes_.load(kRelaxed);
  c.interconnect_bytes = interconnect_bytes_.load(kRelaxed);
  c.host_bytes = host_bytes_.load(kRelaxed);
  c.timeline_ns = now_ns_.load(kRelaxed);
  c.starved_ns = starved_ns_.load(kRelaxed);
  c.backpressure_ns = backpressure_ns_.load(kRelaxed);
  c.stuck_kernels = stuck_kernels_.load(kRelaxed);
  c.occupancy_ns = occupancy_ns_.load(kRelaxed);
  return c;
}

void Stream::ResetCounters() {
  kernels_launched_.store(0, kRelaxed);
  virtual_ns_.store(0, kRelaxed);
  cpu_ns_.store(0, kRelaxed);
  model_ns_.store(0, kRelaxed);
  hbm_bytes_.store(0, kRelaxed);
  pcie_bytes_.store(0, kRelaxed);
  interconnect_bytes_.store(0, kRelaxed);
  host_bytes_.store(0, kRelaxed);
  now_ns_.store(0, kRelaxed);
  starved_ns_.store(0, kRelaxed);
  backpressure_ns_.store(0, kRelaxed);
  stuck_kernels_.store(0, kRelaxed);
  stuck_pending_.store(0, kRelaxed);
  occupancy_ns_.store(0.0, kRelaxed);
}

KernelScope::KernelScope(Stream& stream) : stream_(&stream) {
  if (fault::Injected(fault::Site::kKernelTransient)) {
    // The scope never armed: no kernel is recorded for a failed launch.
    throw fault::TransientError("injected kernel launch fault (kernel.transient)");
  }
}

}  // namespace gs::device
