// Typed, shared, device- or host-resident flat arrays.
//
// Array<T> is the storage primitive under tensors and sparse matrices. It
// has shared-handle semantics (copies alias the same buffer, like
// torch.Tensor); use Clone() for a deep copy. Device-resident arrays draw
// from the current Device's caching allocator so peak-memory accounting
// (Table 9) sees them; host-resident arrays model UVA-pinned graph storage.

#ifndef GSAMPLER_DEVICE_ARRAY_H_
#define GSAMPLER_DEVICE_ARRAY_H_

#include <cstring>
#include <memory>
#include <span>
#include <vector>

#include "common/error.h"
#include "device/device.h"

namespace gs::device {

enum class MemorySpace {
  kDevice,  // simulated GPU memory (counted against capacity)
  kHost,    // host memory accessed via simulated UVA
};

template <typename T>
class Array {
 public:
  Array() = default;

  static Array Empty(int64_t n, MemorySpace space = MemorySpace::kDevice) {
    GS_CHECK_GE(n, 0);
    Array a;
    a.storage_ = std::make_shared<Storage>(n, space);
    return a;
  }

  static Array Full(int64_t n, T value, MemorySpace space = MemorySpace::kDevice) {
    Array a = Empty(n, space);
    for (auto& x : a.span()) {
      x = value;
    }
    return a;
  }

  static Array FromVector(const std::vector<T>& values,
                          MemorySpace space = MemorySpace::kDevice) {
    Array a = Empty(static_cast<int64_t>(values.size()), space);
    if (!values.empty()) {
      std::memcpy(a.data(), values.data(), values.size() * sizeof(T));
    }
    return a;
  }

  bool defined() const { return storage_ != nullptr; }
  int64_t size() const { return storage_ != nullptr ? storage_->count : 0; }
  bool empty() const { return size() == 0; }
  MemorySpace space() const {
    return storage_ != nullptr ? storage_->space : MemorySpace::kDevice;
  }
  int64_t bytes() const { return size() * static_cast<int64_t>(sizeof(T)); }

  T* data() { return storage_ != nullptr ? static_cast<T*>(storage_->ptr) : nullptr; }
  const T* data() const {
    return storage_ != nullptr ? static_cast<const T*>(storage_->ptr) : nullptr;
  }

  std::span<T> span() { return {data(), static_cast<size_t>(size())}; }
  std::span<const T> span() const { return {data(), static_cast<size_t>(size())}; }

  T& operator[](int64_t i) { return data()[i]; }
  const T& operator[](int64_t i) const { return data()[i]; }

  Array Clone() const {
    Array a = Empty(size(), space());
    if (size() > 0) {
      std::memcpy(a.data(), data(), static_cast<size_t>(bytes()));
    }
    return a;
  }

  std::vector<T> ToVector() const {
    return std::vector<T>(data(), data() + size());
  }

 private:
  struct Storage {
    Storage(int64_t n, MemorySpace s) : count(n), space(s) {
      if (space == MemorySpace::kDevice) {
        device = &Current();
        ptr = n > 0 ? device->allocator().Allocate(n * static_cast<int64_t>(sizeof(T)))
                    : nullptr;
      } else {
        ptr = n > 0 ? ::operator new(static_cast<size_t>(n) * sizeof(T)) : nullptr;
      }
    }
    ~Storage() {
      if (ptr == nullptr) {
        return;
      }
      if (space == MemorySpace::kDevice) {
        device->allocator().Free(ptr);
      } else {
        ::operator delete(ptr);
      }
    }
    Storage(const Storage&) = delete;
    Storage& operator=(const Storage&) = delete;

    void* ptr = nullptr;
    int64_t count = 0;
    MemorySpace space;
    Device* device = nullptr;  // set iff space == kDevice
  };

  std::shared_ptr<Storage> storage_;
};

}  // namespace gs::device

#endif  // GSAMPLER_DEVICE_ARRAY_H_
