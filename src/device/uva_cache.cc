#include "device/uva_cache.h"

#include "common/error.h"

namespace gs::device {
namespace {

constexpr uint64_t kEmptyTag = ~uint64_t{0};

uint64_t MixHash(uint64_t x) {
  x ^= x >> 33;
  x *= 0xFF51AFD7ED558CCDull;
  x ^= x >> 33;
  return x;
}

}  // namespace

UvaCache::UvaCache(int64_t slots) {
  GS_CHECK_GT(slots, 0);
  tags_.assign(static_cast<size_t>(slots), kEmptyTag);
}

int64_t UvaCache::Access(uint64_t key, int64_t bytes) {
  const size_t slot = static_cast<size_t>(MixHash(key) % tags_.size());
  if (tags_[slot] == key) {
    ++hits_;
    return 0;
  }
  ++misses_;
  tags_[slot] = key;
  return bytes;
}

void UvaCache::Reset() {
  tags_.assign(tags_.size(), kEmptyTag);
  hits_ = 0;
  misses_ = 0;
}

}  // namespace gs::device
