#include "device/uva_cache.h"

#include <algorithm>

#include "common/error.h"
#include "fault/fault.h"
#include "fault/status.h"

namespace gs::device {
namespace {

constexpr uint64_t kEmptyTag = ~uint64_t{0};

uint64_t MixHash(uint64_t x) {
  x ^= x >> 33;
  x *= 0xFF51AFD7ED558CCDull;
  x ^= x >> 33;
  return x;
}

}  // namespace

UvaCache::UvaCache(int64_t slots) : num_slots_(slots), live_slots_(slots) {
  GS_CHECK_GT(slots, 0);
  tags_ = std::make_unique<std::atomic<uint64_t>[]>(static_cast<size_t>(slots));
  for (int64_t i = 0; i < slots; ++i) {
    tags_[static_cast<size_t>(i)].store(kEmptyTag, std::memory_order_relaxed);
  }
}

int64_t UvaCache::Access(uint64_t key, int64_t bytes) {
  if (fault::Injected(fault::Site::kTransferError)) {
    throw fault::TransientError("injected UVA transfer fault (transfer.error)");
  }
  const int64_t slots = live_slots_.load(std::memory_order_relaxed);
  const size_t slot = static_cast<size_t>(MixHash(key) % static_cast<uint64_t>(slots));
  if (tags_[slot].load(std::memory_order_relaxed) == key) {
    hits_.fetch_add(1, std::memory_order_relaxed);
    return 0;
  }
  misses_.fetch_add(1, std::memory_order_relaxed);
  tags_[slot].store(key, std::memory_order_relaxed);
  return bytes;
}

void UvaCache::Shrink() {
  constexpr int64_t kMinSlots = 64;
  int64_t slots = live_slots_.load(std::memory_order_relaxed);
  while (slots > kMinSlots) {
    const int64_t next = std::max(kMinSlots, slots / 2);
    if (live_slots_.compare_exchange_weak(slots, next, std::memory_order_relaxed)) {
      return;
    }
  }
}

void UvaCache::Reset() {
  for (int64_t i = 0; i < num_slots_; ++i) {
    tags_[static_cast<size_t>(i)].store(kEmptyTag, std::memory_order_relaxed);
  }
  hits_.store(0, std::memory_order_relaxed);
  misses_.store(0, std::memory_order_relaxed);
}

}  // namespace gs::device
