#include "device/profile.h"

#include "common/error.h"

namespace gs::device {
namespace {

// NVLink-class effective bandwidth: ~50 GB/s per direction => 0.02 ns/B.
constexpr double kNvlinkNsPerByte = 0.02;

}  // namespace

void DeviceProfile::Validate() const {
  GS_CHECK_GE(hbm_penalty_ns_per_byte, 0.0)
      << "profile " << name << ": negative HBM bandwidth charge";
  GS_CHECK_GE(pcie_ns_per_byte, 0.0)
      << "profile " << name << ": negative PCIe bandwidth charge";
  GS_CHECK_GE(host_read_ns_per_byte, 0.0)
      << "profile " << name << ": negative host-read bandwidth charge";
  GS_CHECK_GE(interconnect_ns_per_byte, 0.0)
      << "profile " << name << ": negative interconnect bandwidth charge";
}

double Interconnect() { return kNvlinkNsPerByte; }

DeviceProfile V100Sim() {
  DeviceProfile p;
  p.name = "V100Sim";
  p.launch_overhead_ns = 6000;
  p.compute_scale = 1.0;
  p.dense_compute_scale = 0.08;
  p.hbm_penalty_ns_per_byte = 0.0;
  p.pcie_ns_per_byte = kPcieNsPerByte;
  p.host_read_ns_per_byte = kHostReadNsPerByte;
  p.interconnect_ns_per_byte = Interconnect();  // NVLink-class parts
  p.sm_saturation_items = 80 * 2048;  // 80 SMs
  return p;
}

DeviceProfile T4Sim() {
  DeviceProfile p;
  p.name = "T4Sim";
  p.launch_overhead_ns = 6000;
  // T4 FLOPS = 51.6% of V100 -> compute takes ~1.94x as long.
  p.compute_scale = 1.0 / 0.516;
  p.dense_compute_scale = 0.08;
  // T4 HBM bandwidth = 30% of V100 (900 GB/s -> 270 GB/s). Charge the
  // difference in per-byte cost: 1/270e9 - 1/900e9 seconds per byte.
  p.hbm_penalty_ns_per_byte = (1.0 / 270.0 - 1.0 / 900.0);  // ns per byte (GB/s -> ns/B)
  p.pcie_ns_per_byte = kPcieNsPerByte;
  p.host_read_ns_per_byte = kHostReadNsPerByte;
  // T4-class boards have no NVLink: shard exchange rides PCIe peer-to-peer.
  p.interconnect_ns_per_byte = kPcieNsPerByte;
  p.sm_saturation_items = 40 * 1024;  // 40 SMs, fewer threads
  return p;
}

DeviceProfile CpuSim(const std::string& name, double compute_scale) {
  DeviceProfile p;
  p.name = name;
  p.launch_overhead_ns = 300;  // a function call, not a kernel launch
  p.compute_scale = compute_scale;
  p.dense_compute_scale = 0.05;  // BLAS-backed dense math vs naive loops
  p.hbm_penalty_ns_per_byte = 0.0;
  p.pcie_ns_per_byte = 0.0;          // graph lives in host memory already
  p.host_read_ns_per_byte = 0.0;     // "host" memory is the device memory
  p.interconnect_ns_per_byte = 0.0;  // single-socket baseline, no shards
  p.sm_saturation_items = 1;
  return p;
}

}  // namespace gs::device
