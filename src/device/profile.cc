#include "device/profile.h"

namespace gs::device {

DeviceProfile V100Sim() {
  DeviceProfile p;
  p.name = "V100Sim";
  p.launch_overhead_ns = 6000;
  p.compute_scale = 1.0;
  p.dense_compute_scale = 0.08;
  p.hbm_penalty_ns_per_byte = 0.0;
  p.pcie_ns_per_byte = 0.083;
  p.sm_saturation_items = 80 * 2048;  // 80 SMs
  return p;
}

DeviceProfile T4Sim() {
  DeviceProfile p;
  p.name = "T4Sim";
  p.launch_overhead_ns = 6000;
  // T4 FLOPS = 51.6% of V100 -> compute takes ~1.94x as long.
  p.compute_scale = 1.0 / 0.516;
  p.dense_compute_scale = 0.08;
  // T4 HBM bandwidth = 30% of V100 (900 GB/s -> 270 GB/s). Charge the
  // difference in per-byte cost: 1/270e9 - 1/900e9 seconds per byte.
  p.hbm_penalty_ns_per_byte = (1.0 / 270.0 - 1.0 / 900.0);  // ns per byte (GB/s -> ns/B)
  p.pcie_ns_per_byte = 0.083;
  p.sm_saturation_items = 40 * 1024;  // 40 SMs, fewer threads
  return p;
}

DeviceProfile CpuSim(const std::string& name, double compute_scale) {
  DeviceProfile p;
  p.name = name;
  p.launch_overhead_ns = 300;  // a function call, not a kernel launch
  p.compute_scale = compute_scale;
  p.dense_compute_scale = 0.05;  // BLAS-backed dense math vs naive loops
  p.hbm_penalty_ns_per_byte = 0.0;
  p.pcie_ns_per_byte = 0.0;  // graph lives in host memory already
  p.sm_saturation_items = 1;
  return p;
}

}  // namespace gs::device
