// Caching device-memory allocator.
//
// Models the PyTorch CUDA caching allocator the paper builds on (Section
// 4.5): freed blocks are kept in per-size-class free lists instead of being
// returned to the OS, so steady-state sampling loops allocate without
// malloc/cudaMalloc cost. The allocator also provides the accounting used by
// Table 9 ("extra GPU memory") and enforces the simulated device capacity.

#ifndef GSAMPLER_DEVICE_ALLOCATOR_H_
#define GSAMPLER_DEVICE_ALLOCATOR_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <vector>

namespace gs::device {

struct AllocatorStats {
  int64_t bytes_in_use = 0;       // live allocations
  int64_t peak_bytes_in_use = 0;  // high-water mark since last ResetPeak
  int64_t bytes_cached = 0;       // free blocks held in the pool
  // Bytes pinned by long-lived subsystems (the serving plan cache charges
  // its resident plans here). Informational: the bytes are already counted
  // in bytes_in_use — this attributes who holds them, it does not reserve
  // extra capacity.
  int64_t bytes_reserved = 0;
  int64_t alloc_calls = 0;
  int64_t cache_hits = 0;
  // OOM recovery ladder (see Allocate): how often each rung ran and how
  // often an allocation that failed at least once ultimately succeeded.
  int64_t oom_cache_flushes = 0;
  int64_t oom_pressure_rounds = 0;
  int64_t oom_recoveries = 0;
  int64_t oom_failures = 0;
};

class CachingAllocator {
 public:
  explicit CachingAllocator(int64_t capacity_bytes);
  ~CachingAllocator();

  CachingAllocator(const CachingAllocator&) = delete;
  CachingAllocator& operator=(const CachingAllocator&) = delete;

  // Allocates at least `bytes` (rounded up to the size class). On failure
  // — capacity exceeded, or an injected alloc.oom fault — the recovery
  // ladder runs before the failure surfaces: (1) flush the free lists
  // (cudaEmptyCache analogue), retry; (2) invoke the registered pressure
  // handlers so long-lived caches (UVA cache, serving plan cache) shrink
  // their footprint, retry; (3) throw fault::ResourceExhaustedError.
  // Thread-safe: pipeline stages allocate and free concurrently, and a
  // buffer allocated by one stage is freed by the stage that consumes it.
  void* Allocate(int64_t bytes);
  void Free(void* ptr);

  // Returns all cached blocks to the host (cudaEmptyCache analogue).
  void ReleaseCache();

  // Pressure handlers: callbacks invoked (with the allocator's own mutex
  // released) when an allocation still fails after the cache flush. A
  // handler frees what it can and returns the number of live bytes it
  // released (0 if it only shrank simulated state). Handlers run under the
  // registry lock, so Unregister blocks until any in-flight invocation of
  // that handler returns — after it, the callback is never called again.
  // Handlers may call Free/AdjustReserved but must not touch the registry.
  using PressureHandler = std::function<int64_t(int64_t bytes_needed)>;
  int64_t RegisterPressureHandler(PressureHandler handler);
  void UnregisterPressureHandler(int64_t id);

  // Adjusts the reserved-bytes attribution (see AllocatorStats). Positive
  // delta pins bytes, negative releases; releasing more than is currently
  // pinned throws — an unbalanced charge/release pair is an accounting bug
  // in the caller, not something to clamp over. Thread-safe.
  void AdjustReserved(int64_t delta);

  AllocatorStats stats() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return stats_;
  }
  void ResetPeak() {
    std::lock_guard<std::mutex> lock(mutex_);
    stats_.peak_bytes_in_use = stats_.bytes_in_use;
  }
  int64_t capacity_bytes() const { return capacity_bytes_; }

 private:
  static int64_t RoundToClass(int64_t bytes);
  void ReleaseCacheLocked();
  // One allocation attempt; returns nullptr when over capacity (or when
  // `inject_oom` simulates a failed cudaMalloc).
  void* TryAllocateLocked(int64_t rounded, bool inject_oom);
  int64_t InvokePressureHandlers(int64_t bytes_needed);

  int64_t capacity_bytes_;
  mutable std::mutex mutex_;
  AllocatorStats stats_;
  // size class -> free blocks of exactly that (rounded) size
  std::map<int64_t, std::vector<void*>> pool_;
  // live pointer -> rounded size
  std::map<void*, int64_t> live_;
  // Pressure-handler registry; guarded by its own mutex so handlers can
  // re-enter the allocator (Free/AdjustReserved) while being invoked.
  // Lock order: handlers_mutex_ before mutex_, never the reverse.
  std::mutex handlers_mutex_;
  std::map<int64_t, PressureHandler> handlers_;
  int64_t next_handler_id_ = 1;
};

}  // namespace gs::device

#endif  // GSAMPLER_DEVICE_ALLOCATOR_H_
