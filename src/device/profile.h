// Simulated accelerator profiles.
//
// This repository reproduces a GPU system on a CPU-only host. Kernels run
// their real math on the CPU; the device layer keeps a *virtual clock* that
// adds, per kernel, the costs that would dominate on real hardware:
//
//   virtual_time = measured_cpu_time * compute_scale
//                + launch_overhead
//                + hbm_bytes         * hbm_penalty
//                + pcie_bytes        * pcie_penalty         (UVA-resident data only)
//                + interconnect_bytes * interconnect_penalty (shard all-to-all only)
//
// The three *_ns_per_byte fields are bandwidth charges: the reciprocal of an
// effective link bandwidth, in nanoseconds per byte. They must be >= 0;
// Validate() (called whenever a Stream is built from a profile) rejects
// negative values, which would let a kernel move its virtual clock backwards.
//
// The V100 profile is the reference (no extra memory/compute penalty). The
// T4 profile scales bandwidth/compute to the ratios in the paper's Section
// 5.2 (T4 has 30.0% of V100's memory bandwidth and 51.6% of its FLOPS), so
// Figure 9's "speedups persist but shrink on weaker hardware" mechanism is
// reproduced faithfully.

#ifndef GSAMPLER_DEVICE_PROFILE_H_
#define GSAMPLER_DEVICE_PROFILE_H_

#include <cstdint>
#include <string>

namespace gs::device {

struct DeviceProfile {
  std::string name;

  // Fixed cost per kernel launch, the dominant term for tiny mini-batches
  // (reproduces Figure 6's epoch-time-vs-batch-size curve).
  int64_t launch_overhead_ns = 6000;

  // Multiplier on measured CPU kernel time. 1.0 for the reference profile;
  // > 1.0 models a lower-FLOPS part.
  double compute_scale = 1.0;

  // Additional multiplier applied to *dense* kernels (GEMM-like tensor math,
  // marked KernelStats::dense). Real platforms run regular dense kernels far
  // more efficiently than the irregular gather/sample kernels this
  // simulation's virtual clock is normalized to: GPUs via tensor-core GEMM
  // throughput, CPU frameworks via BLAS. This factor carries that relative
  // efficiency and is what makes the sampling-vs-training split of Table 1
  // meaningful; values are documented in DESIGN.md.
  double dense_compute_scale = 1.0;

  // Additional charge per byte moved through (simulated) device memory.
  // 0 for the reference profile; > 0 models lower HBM bandwidth.
  double hbm_penalty_ns_per_byte = 0.0;

  // Charge per byte fetched from host memory over (simulated) PCIe when a
  // graph is UVA-resident. PCIe 3.0 x16 ~ 12 GB/s effective => ~0.083 ns/B.
  double pcie_ns_per_byte = 0.083;

  // Charge per byte *read from host DRAM* when gathering feature rows that
  // missed the device-side hot-set cache (gs::feature). On real hardware a
  // UVA feature gather pays twice: the host memory controller serves the
  // random row reads, then the rows cross PCIe — so FeatureStore::Gather
  // charges miss bytes at pcie_ns_per_byte + host_read_ns_per_byte while
  // cache hits ride HBM. Host DDR4 under random access sustains ~40 GB/s
  // effective => 0.025 ns/B. 0 disables the charge (CPU baselines, where
  // "host" memory is the device memory).
  double host_read_ns_per_byte = 0.0;

  // Charge per byte exchanged with peer shards over the (simulated)
  // device-to-device interconnect — the shard-to-shard analog of the UVA
  // PCIe charge. A multi-device ShardGroup charges each frontier hop's
  // coalesced all-to-all of remote adjacency at this rate
  // (shard::FrontierExchange). 0 disables the charge (single-device
  // profiles / CPU baselines, where there is no interconnect).
  double interconnect_ns_per_byte = 0.0;

  // Deterministic compute charge per parallel work item, used for the
  // `model_ns` counter: the same cost formula as the virtual clock but with
  // the measured-CPU term replaced by items * this (scaled by compute_scale
  // and dense_compute_scale). Plan-time decisions (layout calibration) rank
  // candidates by model_ns so compiled plans are a pure function of the
  // program and profile, never of host timing noise — a requirement of the
  // differential oracle, which re-compiles per run and must get the same
  // plan every time.
  double model_compute_ns_per_item = 0.25;

  // Number of concurrently resident work items needed to saturate all SMs.
  // A kernel processing fewer items runs at proportionally lower occupancy;
  // the stream tracks a time-weighted occupancy average as the SM%
  // utilization proxy (Table 9).
  int64_t sm_saturation_items = 80 * 2048;

  // Simulated device memory capacity; the caching allocator refuses
  // allocations beyond it (drives the super-batch memory-budget search).
  int64_t memory_capacity_bytes = int64_t{16} * 1024 * 1024 * 1024;

  // Watchdog threshold: a kernel whose charged virtual time exceeds this
  // multiple of the profile's own estimate for its stats is flagged as
  // stuck (the executor cancels the batch; see device/stream.h). Outside
  // fault injection charged == estimate, so legitimate kernels never trip
  // it. <= 0 disables the watchdog.
  double watchdog_multiple = 16.0;

  // Rejects invalid bandwidth charges: every *_ns_per_byte field must be
  // >= 0 (a negative charge would run the virtual clock backwards). Called
  // from the Stream constructor, so every Device construction validates its
  // profile; throws gs::Error on violation.
  void Validate() const;
};

// Bandwidth-charge presets (ns per byte = 1 / effective GB/s). These back
// the profile constants below and the shard interconnect.
inline constexpr double kPcieNsPerByte = 0.083;  // PCIe 3.0 x16, ~12 GB/s
inline constexpr double kHostReadNsPerByte = 0.025;  // host DDR4 random reads, ~40 GB/s

// Shard-to-shard interconnect charge: NVLink-class links sustain ~50 GB/s
// effective per direction => 0.02 ns/B, ~4x faster than PCIe. This is the
// value the GPU profiles install as interconnect_ns_per_byte; the
// FrontierExchange all-to-all is charged at this rate.
double Interconnect();

// Reference profile: V100-class simulated device.
DeviceProfile V100Sim();

// Weaker part: T4-class simulated device. compute_scale = 1/0.516 and an
// hbm penalty sized so effective bandwidth is 30% of the reference.
DeviceProfile T4Sim();

// CPU execution profile for the CPU-resident baselines (DGL-CPU, PyG-CPU).
// `compute_scale` models how much slower the baseline's CPU kernels are
// than the reference device's — the paper measures 1-2 orders of magnitude
// (e.g. 702x for PyG-CPU GraphSAGE on PP, Section 5.2); the per-system
// constants live in baselines/baselines.cc and are documented in DESIGN.md.
DeviceProfile CpuSim(const std::string& name, double compute_scale);

}  // namespace gs::device

#endif  // GSAMPLER_DEVICE_PROFILE_H_
