#include "device/allocator.h"

#include <cstdlib>
#include <string>

#include "common/error.h"
#include "fault/fault.h"
#include "fault/status.h"

namespace gs::device {

CachingAllocator::CachingAllocator(int64_t capacity_bytes) : capacity_bytes_(capacity_bytes) {
  GS_CHECK_GT(capacity_bytes, 0);
}

CachingAllocator::~CachingAllocator() {
  std::lock_guard<std::mutex> lock(mutex_);
  ReleaseCacheLocked();
  // Live allocations at destruction indicate a leak in the caller; free the
  // host memory anyway to keep tests sanitizer-clean.
  for (auto& [ptr, size] : live_) {
    (void)size;
    std::free(ptr);
  }
}

int64_t CachingAllocator::RoundToClass(int64_t bytes) {
  // 512-byte granularity below 4 KiB, power-of-two classes above — the same
  // shape as the PyTorch caching allocator's block rounding.
  if (bytes <= 0) {
    return 512;
  }
  if (bytes <= 4096) {
    return (bytes + 511) / 512 * 512;
  }
  int64_t cls = 8192;
  while (cls < bytes) {
    cls *= 2;
  }
  return cls;
}

void* CachingAllocator::TryAllocateLocked(int64_t rounded, bool inject_oom) {
  if (!inject_oom) {
    auto it = pool_.find(rounded);
    if (it != pool_.end() && !it->second.empty()) {
      void* ptr = it->second.back();
      it->second.pop_back();
      stats_.bytes_cached -= rounded;
      ++stats_.cache_hits;
      stats_.bytes_in_use += rounded;
      stats_.peak_bytes_in_use = std::max(stats_.peak_bytes_in_use, stats_.bytes_in_use);
      live_.emplace(ptr, rounded);
      return ptr;
    }
  }
  if (inject_oom || stats_.bytes_in_use + rounded > capacity_bytes_) {
    return nullptr;
  }
  void* ptr = std::malloc(static_cast<size_t>(rounded));
  GS_CHECK(ptr != nullptr) << "host allocation of " << rounded << " bytes failed";
  stats_.bytes_in_use += rounded;
  stats_.peak_bytes_in_use = std::max(stats_.peak_bytes_in_use, stats_.bytes_in_use);
  live_.emplace(ptr, rounded);
  return ptr;
}

void* CachingAllocator::Allocate(int64_t bytes) {
  const int64_t rounded = RoundToClass(bytes);
  // One injection decision per Allocate call, drawn before the first
  // attempt: an injected OOM fails the attempt as a whole (pool hit
  // included, modeling fragmentation) and then exercises the same recovery
  // ladder as a genuine capacity failure.
  const bool inject_oom = fault::Injected(fault::Site::kAllocOom);

  // Recovery ladder. Attempt 0 is the fast path; after a failure, rung 1
  // flushes the free lists (cudaEmptyCache analogue) and rung 2 asks the
  // registered pressure handlers (UVA cache, serving plan cache) to shrink
  // before the failure surfaces as ResourceExhaustedError. Handlers run
  // with mutex_ released so they may call back into Free/AdjustReserved.
  for (int attempt = 0; attempt < 3; ++attempt) {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (attempt == 0) {
        ++stats_.alloc_calls;
      }
      void* ptr = TryAllocateLocked(rounded, inject_oom && attempt == 0);
      if (ptr != nullptr) {
        if (attempt > 0) {
          ++stats_.oom_recoveries;
        }
        return ptr;
      }
      if (attempt == 0) {
        ReleaseCacheLocked();
        ++stats_.oom_cache_flushes;
      }
    }
    if (attempt == 1) {
      {
        std::lock_guard<std::mutex> lock(mutex_);
        ++stats_.oom_pressure_rounds;
      }
      InvokePressureHandlers(rounded);
    }
  }
  int64_t in_use = 0;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    ++stats_.oom_failures;
    in_use = stats_.bytes_in_use;
  }
  throw fault::ResourceExhaustedError(
      "simulated device out of memory: in-use " + std::to_string(in_use) + " + request " +
      std::to_string(rounded) + " exceeds capacity " + std::to_string(capacity_bytes_) +
      " (cache flushed and pressure handlers ran)");
}

void CachingAllocator::Free(void* ptr) {
  if (ptr == nullptr) {
    return;
  }
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = live_.find(ptr);
  GS_CHECK(it != live_.end()) << "Free of unknown pointer";
  const int64_t rounded = it->second;
  live_.erase(it);
  stats_.bytes_in_use -= rounded;
  stats_.bytes_cached += rounded;
  pool_[rounded].push_back(ptr);
}

void CachingAllocator::ReleaseCache() {
  std::lock_guard<std::mutex> lock(mutex_);
  ReleaseCacheLocked();
}

void CachingAllocator::AdjustReserved(int64_t delta) {
  std::lock_guard<std::mutex> lock(mutex_);
  // Validate before mutating: a rejected over-release must not poison the
  // running total for subsequent balanced adjustments.
  GS_CHECK_GE(stats_.bytes_reserved + delta, 0)
      << "reserved-bytes accounting went negative";
  stats_.bytes_reserved += delta;
}

int64_t CachingAllocator::RegisterPressureHandler(PressureHandler handler) {
  GS_CHECK(handler != nullptr) << "null pressure handler";
  std::lock_guard<std::mutex> lock(handlers_mutex_);
  const int64_t id = next_handler_id_++;
  handlers_.emplace(id, std::move(handler));
  return id;
}

void CachingAllocator::UnregisterPressureHandler(int64_t id) {
  std::lock_guard<std::mutex> lock(handlers_mutex_);
  handlers_.erase(id);
}

int64_t CachingAllocator::InvokePressureHandlers(int64_t bytes_needed) {
  // Holding handlers_mutex_ across the calls makes Unregister a barrier:
  // once it returns, the handler cannot be running. mutex_ is NOT held
  // here, so handlers may free memory or adjust reservations.
  std::lock_guard<std::mutex> lock(handlers_mutex_);
  int64_t released = 0;
  for (auto& [id, handler] : handlers_) {
    (void)id;
    released += handler(bytes_needed);
  }
  return released;
}

void CachingAllocator::ReleaseCacheLocked() {
  for (auto& [cls, blocks] : pool_) {
    for (void* ptr : blocks) {
      std::free(ptr);
      stats_.bytes_cached -= cls;
    }
    blocks.clear();
  }
}

}  // namespace gs::device
