#include "device/allocator.h"

#include <cstdlib>

#include "common/error.h"

namespace gs::device {

CachingAllocator::CachingAllocator(int64_t capacity_bytes) : capacity_bytes_(capacity_bytes) {
  GS_CHECK_GT(capacity_bytes, 0);
}

CachingAllocator::~CachingAllocator() {
  std::lock_guard<std::mutex> lock(mutex_);
  ReleaseCacheLocked();
  // Live allocations at destruction indicate a leak in the caller; free the
  // host memory anyway to keep tests sanitizer-clean.
  for (auto& [ptr, size] : live_) {
    (void)size;
    std::free(ptr);
  }
}

int64_t CachingAllocator::RoundToClass(int64_t bytes) {
  // 512-byte granularity below 4 KiB, power-of-two classes above — the same
  // shape as the PyTorch caching allocator's block rounding.
  if (bytes <= 0) {
    return 512;
  }
  if (bytes <= 4096) {
    return (bytes + 511) / 512 * 512;
  }
  int64_t cls = 8192;
  while (cls < bytes) {
    cls *= 2;
  }
  return cls;
}

void* CachingAllocator::Allocate(int64_t bytes) {
  const int64_t rounded = RoundToClass(bytes);
  std::lock_guard<std::mutex> lock(mutex_);
  ++stats_.alloc_calls;

  auto it = pool_.find(rounded);
  if (it != pool_.end() && !it->second.empty()) {
    void* ptr = it->second.back();
    it->second.pop_back();
    stats_.bytes_cached -= rounded;
    ++stats_.cache_hits;
    stats_.bytes_in_use += rounded;
    stats_.peak_bytes_in_use = std::max(stats_.peak_bytes_in_use, stats_.bytes_in_use);
    live_.emplace(ptr, rounded);
    return ptr;
  }

  if (stats_.bytes_in_use + rounded > capacity_bytes_) {
    // Mimic cudaMalloc retry-after-empty-cache before declaring OOM.
    ReleaseCacheLocked();
  }
  GS_CHECK(stats_.bytes_in_use + rounded <= capacity_bytes_)
      << "simulated device out of memory: in-use " << stats_.bytes_in_use << " + request "
      << rounded << " exceeds capacity " << capacity_bytes_;

  void* ptr = std::malloc(static_cast<size_t>(rounded));
  GS_CHECK(ptr != nullptr) << "host allocation of " << rounded << " bytes failed";
  stats_.bytes_in_use += rounded;
  stats_.peak_bytes_in_use = std::max(stats_.peak_bytes_in_use, stats_.bytes_in_use);
  live_.emplace(ptr, rounded);
  return ptr;
}

void CachingAllocator::Free(void* ptr) {
  if (ptr == nullptr) {
    return;
  }
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = live_.find(ptr);
  GS_CHECK(it != live_.end()) << "Free of unknown pointer";
  const int64_t rounded = it->second;
  live_.erase(it);
  stats_.bytes_in_use -= rounded;
  stats_.bytes_cached += rounded;
  pool_[rounded].push_back(ptr);
}

void CachingAllocator::ReleaseCache() {
  std::lock_guard<std::mutex> lock(mutex_);
  ReleaseCacheLocked();
}

void CachingAllocator::AdjustReserved(int64_t delta) {
  std::lock_guard<std::mutex> lock(mutex_);
  // Validate before mutating: a rejected over-release must not poison the
  // running total for subsequent balanced adjustments.
  GS_CHECK_GE(stats_.bytes_reserved + delta, 0)
      << "reserved-bytes accounting went negative";
  stats_.bytes_reserved += delta;
}

void CachingAllocator::ReleaseCacheLocked() {
  for (auto& [cls, blocks] : pool_) {
    for (void* ptr : blocks) {
      std::free(ptr);
      stats_.bytes_cached -= cls;
    }
    blocks.clear();
  }
}

}  // namespace gs::device
