// Hot-entry cache simulator for UVA graph access.
//
// The paper observes (Section 5.2, "Speedups on large-scale graphs") that
// graph sampling has skewed node access, so the adjacency lists of popular
// nodes are effectively cached on the GPU and PCIe traffic is reduced. This
// direct-mapped cache model reproduces that effect: kernels ask the cache
// how many bytes an access actually costs; hits cost nothing, misses cost
// the full transfer and install the entry.
//
// Thread-safe: the serving worker pool samples one shared UVA graph from
// many threads, so tags and counters are atomics. Races on a tag behave
// like real cache races — a concurrent install may evict the other
// thread's entry — which only perturbs the simulated hit rate, never
// correctness.

#ifndef GSAMPLER_DEVICE_UVA_CACHE_H_
#define GSAMPLER_DEVICE_UVA_CACHE_H_

#include <atomic>
#include <cstdint>
#include <memory>

namespace gs::device {

class UvaCache {
 public:
  // `slots` entries, each caching one key (e.g., one node's adjacency list).
  explicit UvaCache(int64_t slots);

  // Returns the PCIe bytes to charge for touching `bytes` worth of data
  // identified by `key`, updating the cache. Under an active
  // fault::FaultScope this is the transfer.error injection site and may
  // throw fault::TransientError (a failed PCIe gather).
  int64_t Access(uint64_t key, int64_t bytes);

  void Reset();

  // Memory-pressure response: halves the number of live slots (down to a
  // small floor), shrinking the cache's simulated device footprint. Keys
  // remap, so the effect is a cache flush plus a permanently higher miss
  // rate — the graceful-degradation rung of the allocator's OOM ladder.
  // Thread-safe with concurrent Access.
  void Shrink();

  int64_t num_slots() const { return live_slots_.load(std::memory_order_relaxed); }
  int64_t hits() const { return hits_.load(std::memory_order_relaxed); }
  int64_t misses() const { return misses_.load(std::memory_order_relaxed); }

 private:
  std::unique_ptr<std::atomic<uint64_t>[]> tags_;
  int64_t num_slots_ = 0;                // allocated tag-array size
  std::atomic<int64_t> live_slots_{0};   // current logical size (<= num_slots_)
  std::atomic<int64_t> hits_{0};
  std::atomic<int64_t> misses_{0};
};

}  // namespace gs::device

#endif  // GSAMPLER_DEVICE_UVA_CACHE_H_
