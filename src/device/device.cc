#include "device/device.h"

namespace gs::device {
namespace {

Device* g_current = nullptr;

Device& DefaultDevice() {
  static Device device(V100Sim());
  return device;
}

}  // namespace

Device& Current() { return g_current != nullptr ? *g_current : DefaultDevice(); }

Device* SetCurrent(Device* device) {
  Device* previous = g_current;
  g_current = device;
  return previous;
}

}  // namespace gs::device
