#include "device/device.h"

#include <atomic>

namespace gs::device {
namespace {

// The current device is process-global (a DeviceGuard on the main thread
// covers the pipeline's stage workers too) with an optional per-thread
// override (shard workers run concurrently, each on its own device); the
// current *stream* is per-thread so overlapped stages record to independent
// timelines.
std::atomic<Device*> g_current{nullptr};
thread_local Device* t_device = nullptr;
thread_local Stream* t_stream = nullptr;

Device& DefaultDevice() {
  static Device device(V100Sim());
  return device;
}

}  // namespace

Stream& Device::stream() { return t_stream != nullptr ? *t_stream : stream_; }

Device& Current() {
  if (t_device != nullptr) {
    return *t_device;
  }
  Device* current = g_current.load(std::memory_order_acquire);
  return current != nullptr ? *current : DefaultDevice();
}

Device* SetCurrent(Device* device) {
  return g_current.exchange(device, std::memory_order_acq_rel);
}

Device* SetThreadDevice(Device* device) {
  Device* previous = t_device;
  t_device = device;
  return previous;
}

Stream* SetThreadStream(Stream* stream) {
  Stream* previous = t_stream;
  t_stream = stream;
  return previous;
}

}  // namespace gs::device
