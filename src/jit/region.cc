#include "jit/region.h"

#include <sstream>

namespace gs::jit {

namespace {

bool IsFusedOp(core::OpKind kind) {
  return kind == core::OpKind::kFusedSliceSample || kind == core::OpKind::kFusedEdgeMap ||
         kind == core::OpKind::kFusedEdgeMapReduce;
}

// Structure-shaping operators worth reporting as a region's feeders: the
// extracts a fused op was split from plus the layout pass's conversions.
bool IsFeederOp(core::OpKind kind) {
  switch (kind) {
    case core::OpKind::kSliceCols:
    case core::OpKind::kSliceRows:
    case core::OpKind::kCompactRows:
    case core::OpKind::kConvertFormat:
    case core::OpKind::kFusedSliceSample:
      return true;
    default:
      return false;
  }
}

std::vector<int> FeederChain(const core::Program& program, const core::Node& node) {
  std::vector<int> feeders;
  if (node.inputs.empty()) {
    return feeders;
  }
  int cursor = node.inputs[0];
  while (cursor >= 0 && IsFeederOp(program.node(cursor).kind)) {
    feeders.push_back(cursor);
    const core::Node& feeder = program.node(cursor);
    cursor = feeder.inputs.empty() ? -1 : feeder.inputs[0];
  }
  return feeders;
}

}  // namespace

std::string Region::Signature() const {
  std::ostringstream out;
  out << "r" << rank << " node=" << node_id << " " << core::OpKindName(kind);
  if (kind == core::OpKind::kFusedSliceSample) {
    out << " k=" << k;
  } else {
    if (kind == core::OpKind::kFusedEdgeMapReduce) {
      out << " axis=" << axis;
    }
    out << " stages=" << stages.size();
  }
  out << " feeds=[";
  for (size_t i = 0; i < feeders.size(); ++i) {
    out << (i > 0 ? "," : "") << feeders[i];
  }
  out << "]";
  return out.str();
}

std::vector<Region> RegionExtractor::Extract(const core::Program& program) {
  std::vector<Region> regions;
  for (const core::Node& node : program.nodes()) {
    if (!IsFusedOp(node.kind)) {
      continue;
    }
    Region region;
    region.rank = static_cast<int>(regions.size());
    region.node_id = node.id;
    region.kind = node.kind;
    region.k = node.attrs.k;
    region.axis = node.attrs.axis;
    region.stages = node.attrs.stages;
    region.feeders = FeederChain(program, node);
    regions.push_back(std::move(region));
  }
  return regions;
}

}  // namespace gs::jit
