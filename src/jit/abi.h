// C ABI shared between the JIT host wrappers (jit.cc) and the code the
// CodeEmitter prints into each generated translation unit.
//
// The generated source is self-contained — it must compile with no repo
// headers on the include path — so it re-declares these structs textually
// (see emitter.cc). Both sides therefore have to agree on layout by
// construction: every struct below is standard-layout with only 8-byte
// members (pointers, int64, function pointer), so there is no padding to
// disagree about. Keep the member order here in sync with the emitter; the
// static_asserts pin the contract.

#ifndef GSAMPLER_JIT_ABI_H_
#define GSAMPLER_JIT_ABI_H_

#include <cstdint>
#include <type_traits>

namespace gs::jit::abi {

// One resolved edge-map stage operand. Which fields are live depends on the
// stage kind baked into the generated code; dead fields are null/0.
struct Stage {
  const float* a = nullptr;          // primary operand (u for dot stages)
  const float* b = nullptr;          // v for dot stages
  const std::int32_t* row_ids = nullptr;  // local->global row map (null = identity)
  std::int64_t operand_rows = 0;     // 0 => operand indexed by local row
  std::int64_t h = 0;                // dot width / dense row stride
};

// kFusedEdgeMap / kFusedEdgeMapReduce. For the map variant `out` has nnz
// slots; for the reduce variant it is the pre-zeroed reduction vector (the
// axis is baked into the generated code).
struct EdgeMapArgs {
  const std::int64_t* indptr = nullptr;   // CSC, num_cols + 1
  const std::int32_t* indices = nullptr;  // CSC rows, nnz
  const float* values = nullptr;          // null => unweighted (base = 1.0f)
  std::int64_t num_cols = 0;
  const Stage* stages = nullptr;          // one per baked stage
  float* out = nullptr;
};

// kFusedSliceSample. `cols` is already localized to the matrix's column
// space; output arrays have capacity k * num_cols. `uniform_int` routes
// every draw through the interpreter's Rng so the emitted Floyd sampler
// consumes the stream in exactly the interpreter's order.
struct SliceSampleArgs {
  const std::int64_t* indptr = nullptr;
  const std::int32_t* indices = nullptr;
  const float* values = nullptr;      // null => unweighted
  const std::int32_t* cols = nullptr;
  std::int64_t num_cols = 0;
  std::int64_t* out_indptr = nullptr;  // num_cols + 1
  std::int32_t* out_indices = nullptr;
  float* out_values = nullptr;         // null => unweighted
  void* rng = nullptr;
  std::uint64_t (*uniform_int)(void* rng, std::uint64_t bound) = nullptr;
};

using KeyFn = const char* (*)();
using EdgeMapFn = void (*)(const EdgeMapArgs*);
using SliceSampleFn = std::int64_t (*)(const SliceSampleArgs*);

static_assert(std::is_standard_layout_v<Stage> && sizeof(Stage) == 40);
static_assert(std::is_standard_layout_v<EdgeMapArgs> && sizeof(EdgeMapArgs) == 48);
static_assert(std::is_standard_layout_v<SliceSampleArgs> && sizeof(SliceSampleArgs) == 80);

}  // namespace gs::jit::abi

#endif  // GSAMPLER_JIT_ABI_H_
