// KernelCache: compiles emitted region sources to shared objects and keeps
// them loaded for the process lifetime.
//
// Artifacts are content-addressed: "<plan digest hex>-r<rank>.cc/.so" in the
// cache's artifact directory. When that directory is the serving plan_dir,
// a warm restart finds the .so next to the persisted plan and dlopens it
// directly — zero recompiles (counted as artifact_hits). A loaded object is
// trusted only after its exported gs_jit_key() matches the requested key;
// a stale or corrupted artifact fails verification, is deleted, and is
// rebuilt from source once before the region gives up and demotes.
//
// Every failure mode — injected fault (fault::Site::kJitCompile probes at
// compile entry), missing toolchain, compiler error, dlopen/dlsym failure,
// key mismatch — resolves to a null entry plus a diagnostic, never an
// exception: the caller's contract is "null means interpret".
//
// Loaded handles are deliberately never dlclosed: jump tables holding the
// entry pointers are shared across sessions with arbitrary lifetimes, and
// the handful of small .so mappings per process is the standard price of a
// JIT.

#ifndef GSAMPLER_JIT_KERNEL_CACHE_H_
#define GSAMPLER_JIT_KERNEL_CACHE_H_

#include <cstdint>
#include <map>
#include <mutex>
#include <string>

namespace gs::jit {

struct KernelCacheOptions {
  // Where .cc/.so artifacts live. Empty selects a per-user temp directory
  // (artifacts still persist across processes, just not next to the plans).
  std::string artifact_dir;
  // Compiler driver; empty means $GS_JIT_CXX when set, else "c++".
  std::string compiler;
};

struct KernelCacheCounters {
  int64_t compiles = 0;       // sources built in this process
  int64_t artifact_hits = 0;  // persisted .so reused without compiling
  int64_t failures = 0;       // keys that resolved to "interpret"
};

class KernelCache {
 public:
  explicit KernelCache(KernelCacheOptions options = {});

  KernelCache(const KernelCache&) = delete;
  KernelCache& operator=(const KernelCache&) = delete;

  // Resolves `key` to the artifact's gs_jit_run entry point, compiling
  // `source` if no loadable artifact exists. Returns nullptr on any
  // failure, with the reason in *error (results — including failures — are
  // memoized per key). `from_artifact`, when non-null, reports whether the
  // entry was reloaded from a persisted .so rather than compiled here.
  // Thread-safe.
  void* LoadOrCompile(const std::string& key, const std::string& source, std::string* error,
                      bool* from_artifact = nullptr);

  KernelCacheCounters counters() const;
  const std::string& artifact_dir() const { return artifact_dir_; }

 private:
  void* LoadVerified(const std::string& so_path, const std::string& key, std::string* error);
  bool Compile(const std::string& key, const std::string& source, std::string* error);

  std::string artifact_dir_;
  std::string compiler_;
  mutable std::mutex mutex_;
  std::map<std::string, void*> entries_;  // key -> entry (nullptr = known bad)
  KernelCacheCounters counters_;
};

}  // namespace gs::jit

#endif  // GSAMPLER_JIT_KERNEL_CACHE_H_
