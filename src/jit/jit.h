// gs::jit — JIT compilation of fused IR regions to native code.
//
// The interpreter executes fused operators (Extract-Select sampling and the
// edge-map pipelines) by dispatching on stage descriptors per edge. The JIT
// removes that residual interpretation: for every fused region of a
// CompiledPlan it emits specialized C++ (fanout, reduce axis, and stage
// pipeline baked in as constants), cc-compiles it to a shared object keyed
// by plan digest + region rank, dlopens it, and installs the entry points
// as a core::FusedKernelTable on the plan's sessions. Artifacts persist
// next to the plans, so a warm restart re-attaches compiled kernels without
// invoking the compiler at all.
//
// The demotion ladder: a region runs JIT-compiled only after every rung
// holds — emitter supports the region, toolchain produced an object (the
// injectable failure: fault::Site::kJitCompile), dlopen + key verification
// passed, and the kernel's output matched the interpreter bit-for-bit on a
// self-check probe. Any rung failing demotes that region (and only that
// region) to the interpreter with a counted reason; a demotion is never a
// failed request. At run time the jump table can still decline a call it
// cannot handle (segmented sampling, irregular operands) — that falls
// through to the interpreter per call, not per region.
//
// Bit-identity: the emitted code mirrors the interpreter's kernels
// statement for statement, and every random draw is routed back through the
// session's Rng, so JIT on/off cannot change any sampled result. The
// differential oracle and tools/fuzz_passes --jit enforce this.

#ifndef GSAMPLER_JIT_JIT_H_
#define GSAMPLER_JIT_JIT_H_

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "core/executor.h"
#include "core/plan.h"
#include "jit/kernel_cache.h"
#include "jit/region.h"

namespace gs::jit {

// Process-wide counters (atomic; aggregated across every engine so serving
// stats see one coherent view regardless of how many plans share kernels).
struct JitStats {
  int64_t regions = 0;        // fused regions seen by TableFor
  int64_t compiled = 0;       // regions running native code
  int64_t artifact_hits = 0;  // of those, reloaded from a persisted .so
  int64_t hits = 0;           // fused-op executions served by native code
  int64_t demotions = 0;      // regions demoted to the interpreter
};

JitStats GlobalJitStats();
void ResetGlobalJitStats();

struct JitEngineOptions {
  // Artifact directory (serving passes plan_dir). Empty = temp directory.
  std::string artifact_dir;
  // Compiler driver override; empty = $GS_JIT_CXX, else "c++".
  std::string compiler;
  // Verify each loaded kernel against the interpreter on a tiny probe input
  // before trusting it; mismatches demote the region.
  bool self_check = true;
};

class JitEngine {
 public:
  explicit JitEngine(JitEngineOptions options = {});

  JitEngine(const JitEngine&) = delete;
  JitEngine& operator=(const JitEngine&) = delete;

  // The jump table for `plan`'s fused regions, memoized by plan digest.
  // Returns nullptr when the plan has no fused regions (or GS_JIT_DISABLE
  // is set); a table whose regions all demoted is still returned and simply
  // declines every call. Never throws on compile failure. Thread-safe.
  std::shared_ptr<const core::FusedKernelTable> TableFor(const core::CompiledPlan& plan);

  const std::string& artifact_dir() const { return cache_.artifact_dir(); }
  KernelCacheCounters cache_counters() const { return cache_.counters(); }

 private:
  JitEngineOptions options_;
  KernelCache cache_;
  std::mutex mutex_;
  std::map<uint64_t, std::shared_ptr<const core::FusedKernelTable>> tables_;
};

}  // namespace gs::jit

#endif  // GSAMPLER_JIT_JIT_H_
