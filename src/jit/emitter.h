// CodeEmitter: prints one self-contained C++ translation unit per region.
//
// The generated source compiles with no repo headers on the include path —
// it textually re-declares the C ABI structs from jit/abi.h (layout agrees
// by construction; see the note there) and bakes the region's
// specialization inputs in as constants: the slice-sample fanout, the
// reduce axis, and the whole edge-map stage pipeline (operator, operand
// kind, scalar as an exact hexfloat literal, operand slots) are unrolled
// into straight-line code instead of being interpreted per edge.
//
// Two entry points are exported with C linkage:
//
//   const char* gs_jit_key(void)   the cache key the artifact was built
//                                  for; the KernelCache verifies it after
//                                  dlopen so a stale or foreign .so can
//                                  never serve a plan
//   ...         gs_jit_run(...)    the kernel; signature depends on the
//                                  region kind (abi::EdgeMapFn or
//                                  abi::SliceSampleFn)
//
// Bit-identity with the interpreter is by construction: the emitted loops
// mirror sparse/fused.cc and sparse/sample.cc statement for statement (same
// iteration order, same float expression shapes, same std::pow overload),
// and every random draw goes through the host Rng callback so the stream
// advances exactly as the interpreter's would.

#ifndef GSAMPLER_JIT_EMITTER_H_
#define GSAMPLER_JIT_EMITTER_H_

#include <string>

#include "jit/region.h"

namespace gs::jit {

class CodeEmitter {
 public:
  // True when `region` is one this emitter can specialize (e.g. a fused
  // sample needs a positive fanout). Non-emittable regions demote to the
  // interpreter without counting as compile failures.
  static bool CanEmit(const Region& region);

  // The full translation unit for `region`; `key` is embedded verbatim as
  // gs_jit_key()'s return value. Requires CanEmit(region).
  static std::string Emit(const Region& region, const std::string& key);
};

}  // namespace gs::jit

#endif  // GSAMPLER_JIT_EMITTER_H_
