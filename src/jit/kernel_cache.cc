#include "jit/kernel_cache.h"

#include <dlfcn.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "common/logging.h"
#include "fault/fault.h"
#include "jit/abi.h"

namespace gs::jit {

namespace fs = std::filesystem;

namespace {

std::string DefaultArtifactDir() {
  std::error_code ec;
  fs::path base = fs::temp_directory_path(ec);
  if (ec) {
    base = "/tmp";
  }
  return (base / "gsampler-jit").string();
}

std::string DefaultCompiler() {
  const char* env = std::getenv("GS_JIT_CXX");
  return env != nullptr && *env != '\0' ? env : "c++";
}

bool WriteFile(const std::string& path, const std::string& content) {
  std::ofstream out(path, std::ios::trunc);
  out << content;
  return out.good();
}

std::string ReadFileHead(const std::string& path, size_t limit = 512) {
  std::ifstream in(path);
  std::string content((std::istreambuf_iterator<char>(in)), std::istreambuf_iterator<char>());
  if (content.size() > limit) {
    content.resize(limit);
    content += "...";
  }
  return content;
}

}  // namespace

KernelCache::KernelCache(KernelCacheOptions options)
    : artifact_dir_(options.artifact_dir.empty() ? DefaultArtifactDir()
                                                 : std::move(options.artifact_dir)),
      compiler_(options.compiler.empty() ? DefaultCompiler() : std::move(options.compiler)) {
  std::error_code ec;
  fs::create_directories(artifact_dir_, ec);  // best-effort; compile reports failures
}

void* KernelCache::LoadVerified(const std::string& so_path, const std::string& key,
                                std::string* error) {
  void* handle = ::dlopen(so_path.c_str(), RTLD_NOW | RTLD_LOCAL);
  if (handle == nullptr) {
    const char* why = ::dlerror();
    *error = "dlopen failed: " + std::string(why != nullptr ? why : "unknown");
    return nullptr;
  }
  auto key_fn = reinterpret_cast<abi::KeyFn>(::dlsym(handle, "gs_jit_key"));
  void* run_fn = ::dlsym(handle, "gs_jit_run");
  if (key_fn == nullptr || run_fn == nullptr) {
    *error = "artifact exports no gs_jit_key/gs_jit_run";
    ::dlclose(handle);
    return nullptr;
  }
  const char* artifact_key = key_fn();
  if (artifact_key == nullptr || key != artifact_key) {
    *error = "artifact key mismatch: expected " + key + ", got " +
             (artifact_key != nullptr ? artifact_key : "(null)");
    ::dlclose(handle);
    return nullptr;
  }
  // Verified handles stay open for the process lifetime (see header).
  return run_fn;
}

bool KernelCache::Compile(const std::string& key, const std::string& source, std::string* error) {
  const fs::path dir(artifact_dir_);
  const std::string cc_path = (dir / (key + ".cc")).string();
  const std::string so_path = (dir / (key + ".so")).string();
  const std::string tmp_path = so_path + ".tmp" + std::to_string(::getpid());
  const std::string log_path = so_path + ".log";

  if (!WriteFile(cc_path, source)) {
    *error = "cannot write source " + cc_path;
    return false;
  }
  std::ostringstream cmd;
  cmd << compiler_ << " -std=c++17 -O2 -shared -fPIC -o \"" << tmp_path << "\" \"" << cc_path
      << "\" > \"" << log_path << "\" 2>&1";
  const int status = std::system(cmd.str().c_str());
  const bool ok = status != -1 && WIFEXITED(status) && WEXITSTATUS(status) == 0;
  if (!ok) {
    *error = "compile failed (" + compiler_ + "): " + ReadFileHead(log_path);
    std::error_code ec;
    fs::remove(tmp_path, ec);
    return false;
  }
  // Built under a process-unique name, published with an atomic rename so a
  // concurrent process can never dlopen a half-written object.
  std::error_code ec;
  fs::rename(tmp_path, so_path, ec);
  if (ec) {
    *error = "cannot publish artifact " + so_path + ": " + ec.message();
    fs::remove(tmp_path, ec);
    return false;
  }
  fs::remove(log_path, ec);
  return true;
}

void* KernelCache::LoadOrCompile(const std::string& key, const std::string& source,
                                 std::string* error, bool* from_artifact) {
  if (from_artifact != nullptr) {
    *from_artifact = false;
  }
  std::lock_guard<std::mutex> lock(mutex_);
  if (auto it = entries_.find(key); it != entries_.end()) {
    if (it->second == nullptr) {
      *error = "previously failed (memoized)";
    }
    return it->second;
  }

  // The injectable failure: the whole load-or-compile resolution fails as
  // if the toolchain were unavailable, and the region demotes.
  if (fault::Injected(fault::Site::kJitCompile)) {
    *error = "injected jit.compile fault";
    entries_[key] = nullptr;
    ++counters_.failures;
    return nullptr;
  }

  const std::string so_path = (fs::path(artifact_dir_) / (key + ".so")).string();
  std::error_code ec;
  if (fs::exists(so_path, ec)) {
    std::string load_error;
    if (void* entry = LoadVerified(so_path, key, &load_error); entry != nullptr) {
      entries_[key] = entry;
      ++counters_.artifact_hits;
      if (from_artifact != nullptr) {
        *from_artifact = true;
      }
      return entry;
    }
    // Stale or corrupted artifact: drop it and rebuild from source.
    GS_LOG(Warning) << "jit: discarding artifact " << so_path << ": " << load_error;
    fs::remove(so_path, ec);
  }

  if (!Compile(key, source, error)) {
    entries_[key] = nullptr;
    ++counters_.failures;
    return nullptr;
  }
  void* entry = LoadVerified(so_path, key, error);
  entries_[key] = entry;
  if (entry == nullptr) {
    ++counters_.failures;
  } else {
    ++counters_.compiles;
  }
  return entry;
}

KernelCacheCounters KernelCache::counters() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return counters_;
}

}  // namespace gs::jit
