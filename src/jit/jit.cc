#include "jit/jit.h"

#include <atomic>
#include <cstring>
#include <unordered_map>
#include <vector>

#include "common/logging.h"
#include "device/device.h"
#include "device/stream.h"
#include "jit/abi.h"
#include "jit/emitter.h"
#include "sparse/fused.h"
#include "sparse/kernels.h"
#include "tensor/tensor.h"

namespace gs::jit {

namespace {

using sparse::Compressed;
using sparse::EdgeMapStage;
using sparse::Format;
using sparse::IdArray;
using sparse::Matrix;
using sparse::OffsetArray;
using sparse::ValueArray;
using tensor::Tensor;

struct Counters {
  std::atomic<int64_t> regions{0};
  std::atomic<int64_t> compiled{0};
  std::atomic<int64_t> artifact_hits{0};
  std::atomic<int64_t> hits{0};
  std::atomic<int64_t> demotions{0};
};

Counters& GlobalCounters() {
  static Counters counters;
  return counters;
}

device::Stream& CurrentStream() { return device::Current().stream(); }

// Rng thunk the emitted samplers draw through: every random decision still
// comes from the session's stream, in the interpreter's order.
uint64_t UniformIntThunk(void* rng, uint64_t bound) {
  return static_cast<Rng*>(rng)->UniformInt(bound);
}

// Resolves the stage pipeline's operands into the flat ABI view the emitted
// code indexes, mirroring sparse/fused.cc's CheckStages — except that any
// irregularity makes the call decline (return false) instead of throwing,
// so the interpreter handles (and reports) it exactly as without a JIT.
struct ResolvedStages {
  std::vector<abi::Stage> stages;
  int64_t operand_bytes = 0;
};

bool ResolveRowOperand(const Matrix& m, int64_t operand_rows, abi::Stage* out) {
  if (operand_rows == m.num_rows()) {
    out->operand_rows = 0;  // local row space: index by local row directly
    out->row_ids = nullptr;
    return true;
  }
  if (operand_rows <= 0) {
    return false;
  }
  if (!m.has_row_ids() && m.num_rows() % operand_rows != 0) {
    return false;
  }
  out->operand_rows = operand_rows;
  out->row_ids = m.has_row_ids() ? m.row_ids().data() : nullptr;
  return true;
}

bool ResolveStages(const Matrix& m, const std::vector<EdgeMapStage>& stages,
                   std::span<const Tensor> operands, ResolvedStages* out) {
  out->stages.clear();
  out->stages.reserve(stages.size());
  auto operand_at = [&](int index) -> const Tensor* {
    if (index < 0 || index >= static_cast<int>(operands.size())) {
      return nullptr;
    }
    return &operands[static_cast<size_t>(index)];
  };
  for (const EdgeMapStage& stage : stages) {
    abi::Stage resolved;
    switch (stage.kind) {
      case EdgeMapStage::OperandKind::kScalar:
        break;
      case EdgeMapStage::OperandKind::kRowVector: {
        const Tensor* t = operand_at(stage.operand);
        if (t == nullptr || !ResolveRowOperand(m, t->numel(), &resolved)) {
          return false;
        }
        resolved.a = t->data();
        break;
      }
      case EdgeMapStage::OperandKind::kColVector: {
        const Tensor* t = operand_at(stage.operand);
        if (t == nullptr || t->numel() != m.num_cols()) {
          return false;
        }
        resolved.a = t->data();
        break;
      }
      case EdgeMapStage::OperandKind::kDense: {
        const Tensor* t = operand_at(stage.operand);
        if (t == nullptr || t->cols() != m.num_cols() ||
            !ResolveRowOperand(m, t->rows(), &resolved)) {
          return false;
        }
        resolved.a = t->data();
        resolved.h = t->cols();
        break;
      }
      case EdgeMapStage::OperandKind::kEdgeTensor: {
        const Tensor* t = operand_at(stage.operand);
        if (t == nullptr || t->numel() != m.nnz()) {
          return false;
        }
        resolved.a = t->data();
        break;
      }
      case EdgeMapStage::OperandKind::kDot: {
        const Tensor* u = operand_at(stage.operand);
        const Tensor* v = operand_at(stage.operand2);
        if (u == nullptr || v == nullptr || v->rows() != m.num_cols() ||
            u->cols() != v->cols() || !ResolveRowOperand(m, u->rows(), &resolved)) {
          return false;
        }
        resolved.a = u->data();
        resolved.b = v->data();
        resolved.h = u->cols();
        break;
      }
    }
    out->stages.push_back(resolved);
  }
  out->operand_bytes = 0;
  for (const Tensor& t : operands) {
    out->operand_bytes += t.numel() * static_cast<int64_t>(sizeof(float));
  }
  return true;
}

// Pre-kernel column localization for the fused sampler (the interpreter's
// ColLocalizer, minus the throwing): false when any id is absent, in which
// case the interpreter runs and raises the identical error.
bool LocalizeCols(const Matrix& m, const IdArray& cols, std::vector<int32_t>* out) {
  out->resize(static_cast<size_t>(cols.size()));
  if (!m.has_col_ids()) {
    for (int64_t i = 0; i < cols.size(); ++i) {
      const int32_t c = cols[i];
      if (c < 0 || c >= m.num_cols()) {
        return false;
      }
      (*out)[static_cast<size_t>(i)] = c;
    }
    return true;
  }
  const IdArray& ids = m.col_ids();
  std::unordered_map<int32_t, int32_t> map;
  map.reserve(static_cast<size_t>(ids.size()));
  for (int64_t i = 0; i < ids.size(); ++i) {
    map.emplace(ids[i], static_cast<int32_t>(i));
  }
  for (int64_t i = 0; i < cols.size(); ++i) {
    auto it = map.find(cols[i]);
    if (it == map.end()) {
      return false;
    }
    (*out)[static_cast<size_t>(i)] = it->second;
  }
  return true;
}

struct CompiledRegion {
  Region region;
  void* entry = nullptr;
};

// The per-plan jump table the executor consults before interpreting a fused
// node. Calls it declines (missing region, segmented sampling handled at
// the executor, irregular operands) fall through to the interpreter; calls
// it accepts charge the same simulated-device costs as the interpreter's
// kernels and produce bit-identical results.
class JitKernelTable : public core::FusedKernelTable {
 public:
  explicit JitKernelTable(std::unordered_map<int, CompiledRegion> regions)
      : regions_(std::move(regions)) {}

  size_t num_regions() const { return regions_.size(); }

  bool EdgeMap(int node_id, const Matrix& m, std::span<const Tensor> operands,
               Matrix* out) const override {
    const CompiledRegion* compiled = Find(node_id, core::OpKind::kFusedEdgeMap);
    if (compiled == nullptr) {
      return false;
    }
    const Compressed& csc = m.Csc();
    ResolvedStages resolved;
    if (!ResolveStages(m, compiled->region.stages, operands, &resolved)) {
      return false;
    }
    device::KernelScope kernel(CurrentStream());
    ValueArray mapped = ValueArray::Empty(m.nnz());
    abi::EdgeMapArgs args;
    args.indptr = csc.indptr.data();
    args.indices = csc.indices.data();
    args.values = csc.values.defined() ? csc.values.data() : nullptr;
    args.num_cols = m.num_cols();
    args.stages = resolved.stages.data();
    args.out = mapped.data();
    reinterpret_cast<abi::EdgeMapFn>(compiled->entry)(&args);
    kernel.Finish({.parallel_items = m.nnz(),
                   .hbm_bytes = m.nnz() * int64_t{12} + resolved.operand_bytes});
    *out = m.WithValues(Format::kCsc, std::move(mapped));
    GlobalCounters().hits.fetch_add(1, std::memory_order_relaxed);
    return true;
  }

  bool EdgeMapReduce(int node_id, const Matrix& m, std::span<const Tensor> operands,
                     ValueArray* out) const override {
    const CompiledRegion* compiled = Find(node_id, core::OpKind::kFusedEdgeMapReduce);
    if (compiled == nullptr) {
      return false;
    }
    const Compressed& csc = m.Csc();
    ResolvedStages resolved;
    if (!ResolveStages(m, compiled->region.stages, operands, &resolved)) {
      return false;
    }
    const int axis = compiled->region.axis;
    device::KernelScope kernel(CurrentStream());
    ValueArray reduced = ValueArray::Full(axis == 0 ? m.num_rows() : m.num_cols(), 0.0f);
    abi::EdgeMapArgs args;
    args.indptr = csc.indptr.data();
    args.indices = csc.indices.data();
    args.values = csc.values.defined() ? csc.values.data() : nullptr;
    args.num_cols = m.num_cols();
    args.stages = resolved.stages.data();
    args.out = reduced.data();
    reinterpret_cast<abi::EdgeMapFn>(compiled->entry)(&args);
    kernel.Finish({.parallel_items = m.nnz(),
                   .hbm_bytes = m.nnz() * int64_t{8} + reduced.bytes() + resolved.operand_bytes});
    *out = std::move(reduced);
    GlobalCounters().hits.fetch_add(1, std::memory_order_relaxed);
    return true;
  }

  bool SliceSample(int node_id, const Matrix& m, const tensor::IdArray& cols, Rng& rng,
                   Matrix* out) const override {
    const CompiledRegion* compiled = Find(node_id, core::OpKind::kFusedSliceSample);
    if (compiled == nullptr) {
      return false;
    }
    const int64_t k = compiled->region.k;
    const Compressed& csc = m.Csc();
    const bool weighted = csc.values.defined();
    const int64_t t = cols.size();
    std::vector<int32_t> local_cols;
    if (!LocalizeCols(m, cols, &local_cols)) {
      return false;
    }
    std::vector<int64_t> out_indptr(static_cast<size_t>(t) + 1);
    std::vector<int32_t> out_indices(static_cast<size_t>(k * t));
    std::vector<float> out_values(weighted ? static_cast<size_t>(k * t) : 0);

    device::KernelScope kernel(CurrentStream());
    abi::SliceSampleArgs args;
    args.indptr = csc.indptr.data();
    args.indices = csc.indices.data();
    args.values = weighted ? csc.values.data() : nullptr;
    args.cols = local_cols.data();
    args.num_cols = t;
    args.out_indptr = out_indptr.data();
    args.out_indices = out_indices.data();
    args.out_values = weighted ? out_values.data() : nullptr;
    args.rng = &rng;
    args.uniform_int = &UniformIntThunk;
    const int64_t nnz = reinterpret_cast<abi::SliceSampleFn>(compiled->entry)(&args);

    // Same per-column UVA charge sequence as the interpreter: only the
    // chosen slots are touched (Extract-Select fusion's UVA win).
    int64_t pcie = 0;
    if (m.IsUva()) {
      for (int64_t i = 0; i < t; ++i) {
        pcie += m.uva_cache()->Access(static_cast<uint64_t>(cols[i]),
                                      (out_indptr[static_cast<size_t>(i) + 1] -
                                       out_indptr[static_cast<size_t>(i)]) *
                                          4);
      }
    }

    out_indices.resize(static_cast<size_t>(nnz));
    Compressed sampled;
    sampled.indices = IdArray::FromVector(out_indices);
    if (weighted) {
      out_values.resize(static_cast<size_t>(nnz));
      sampled.values = ValueArray::FromVector(out_values);
    }
    sampled.indptr = OffsetArray::FromVector(out_indptr);
    Matrix result = Matrix::FromCsc(m.num_rows(), t, std::move(sampled));
    // InheritRowSpace: sampling drops edges, so the compact flag must not
    // propagate (see kernels_internal.h).
    result.SetRowIds(m.row_ids());
    result.SetRowsCompact(false);
    result.SetColIds(cols.Clone());
    kernel.Finish({.parallel_items = std::max<int64_t>(nnz, 1),
                   .hbm_bytes = nnz * int64_t{8},
                   .pcie_bytes = pcie});
    *out = std::move(result);
    GlobalCounters().hits.fetch_add(1, std::memory_order_relaxed);
    return true;
  }

 private:
  const CompiledRegion* Find(int node_id, core::OpKind kind) const {
    auto it = regions_.find(node_id);
    if (it == regions_.end() || it->second.region.kind != kind) {
      return nullptr;
    }
    return &it->second;
  }

  std::unordered_map<int, CompiledRegion> regions_;
};

// --- Self-check probes -------------------------------------------------------
//
// Before a freshly loaded kernel is trusted it runs once on a tiny
// deterministic input and its output is compared bit-for-bit against the
// interpreter's. The probe graph is square (4x4) so row-, column- and
// dense-operand shapes coincide whatever the stage pipeline references.

Matrix ProbeMatrix() {
  Compressed csc;
  csc.indptr = OffsetArray::FromVector({0, 2, 3, 5, 6});
  csc.indices = IdArray::FromVector({0, 2, 1, 0, 3, 2});
  csc.values = ValueArray::FromVector({0.5f, 1.25f, 2.0f, 0.75f, 1.5f, 3.0f});
  return Matrix::FromCsc(4, 4, std::move(csc));
}

// Deterministic non-zero filler so div/pow stages stay well-behaved.
Tensor ProbeTensor(std::vector<int64_t> shape) {
  Tensor t = Tensor::Empty(shape);
  for (int64_t i = 0; i < t.numel(); ++i) {
    t.at(i) = 0.25f + 0.5f * static_cast<float>(i % 7);
  }
  return t;
}

// Builds operands satisfying every stage's shape requirement against the
// probe matrix; false when two stages need the same slot in incompatible
// shapes (then the probe is skipped rather than failed).
bool ProbeOperands(const Matrix& m, const std::vector<EdgeMapStage>& stages,
                   std::vector<Tensor>* out) {
  auto place = [&](int index, std::vector<int64_t> shape) {
    if (index < 0) {
      return false;
    }
    if (static_cast<int>(out->size()) <= index) {
      out->resize(static_cast<size_t>(index) + 1);
    }
    Tensor& slot = (*out)[static_cast<size_t>(index)];
    if (slot.defined()) {
      return slot.shape() == shape;
    }
    slot = ProbeTensor(std::move(shape));
    return true;
  };
  for (const EdgeMapStage& stage : stages) {
    switch (stage.kind) {
      case EdgeMapStage::OperandKind::kScalar:
        break;
      case EdgeMapStage::OperandKind::kRowVector:
        if (!place(stage.operand, {m.num_rows()})) {
          return false;
        }
        break;
      case EdgeMapStage::OperandKind::kColVector:
        if (!place(stage.operand, {m.num_cols()})) {
          return false;
        }
        break;
      case EdgeMapStage::OperandKind::kDense:
        if (!place(stage.operand, {m.num_rows(), m.num_cols()})) {
          return false;
        }
        break;
      case EdgeMapStage::OperandKind::kEdgeTensor:
        if (!place(stage.operand, {m.nnz()})) {
          return false;
        }
        break;
      case EdgeMapStage::OperandKind::kDot:
        if (!place(stage.operand, {m.num_rows(), 2}) ||
            !place(stage.operand2, {m.num_cols(), 2})) {
          return false;
        }
        break;
    }
  }
  // Undefined slots (pipeline skips an index) still need valid tensors for
  // the interpreter's operand span; give them edge-length fillers.
  for (Tensor& slot : *out) {
    if (!slot.defined()) {
      slot = ProbeTensor({1});
    }
  }
  return true;
}

bool BitEqual(const ValueArray& a, const ValueArray& b) {
  if (a.size() != b.size()) {
    return false;
  }
  return a.size() == 0 ||
         std::memcmp(a.data(), b.data(), static_cast<size_t>(a.bytes())) == 0;
}

bool SelfCheckEdgeMap(const Region& region, void* entry) {
  const Matrix m = ProbeMatrix();
  std::vector<Tensor> operands;
  if (!ProbeOperands(m, region.stages, &operands)) {
    return true;  // un-probeable operand layout; trust construction
  }
  ResolvedStages resolved;
  if (!ResolveStages(m, region.stages, operands, &resolved)) {
    return false;
  }
  const Compressed& csc = m.Csc();
  const bool reduce = region.kind == core::OpKind::kFusedEdgeMapReduce;
  ValueArray got = reduce ? ValueArray::Full(region.axis == 0 ? m.num_rows() : m.num_cols(), 0.0f)
                          : ValueArray::Empty(m.nnz());
  abi::EdgeMapArgs args;
  args.indptr = csc.indptr.data();
  args.indices = csc.indices.data();
  args.values = csc.values.data();
  args.num_cols = m.num_cols();
  args.stages = resolved.stages.data();
  args.out = got.data();
  reinterpret_cast<abi::EdgeMapFn>(entry)(&args);

  if (reduce) {
    const ValueArray want = sparse::FusedEdgeMapReduce(m, region.stages, operands, region.axis);
    return BitEqual(got, want);
  }
  const Matrix want = sparse::FusedEdgeMap(m, region.stages, operands);
  return BitEqual(got, want.Csc().values);
}

bool SelfCheckSliceSample(const Region& region, void* entry) {
  // Degrees straddle the fanout so both Floyd's loop and the take-all path
  // run; identical seeds must yield identical draws, slots, and values.
  const int64_t k = region.k;
  std::vector<int64_t> indptr{0};
  std::vector<int32_t> indices;
  std::vector<float> values;
  const int64_t degrees[] = {0, 1, k, k + 3, 2};
  int32_t next_row = 0;
  int64_t num_rows = 0;
  for (int64_t deg : degrees) {
    for (int64_t j = 0; j < deg; ++j) {
      indices.push_back(next_row);
      values.push_back(0.5f + 0.25f * static_cast<float>(next_row % 11));
      next_row = (next_row * 7 + 3) % 997;
      num_rows = std::max<int64_t>(num_rows, next_row + 1);
    }
    indptr.push_back(static_cast<int64_t>(indices.size()));
  }
  Compressed csc;
  csc.indptr = OffsetArray::FromVector(indptr);
  csc.indices = IdArray::FromVector(indices);
  csc.values = ValueArray::FromVector(values);
  const int64_t t = static_cast<int64_t>(indptr.size()) - 1;
  const Matrix m = Matrix::FromCsc(std::max<int64_t>(num_rows, 997), t, std::move(csc));
  IdArray cols = IdArray::FromVector({0, 1, 2, 3, 4});

  Rng want_rng(0xC0FFEE);
  const Matrix want = sparse::FusedSliceSample(m, cols, k, want_rng);

  Rng got_rng(0xC0FFEE);
  std::vector<int32_t> local_cols;
  if (!LocalizeCols(m, cols, &local_cols)) {
    return false;
  }
  const Compressed& mc = m.Csc();
  std::vector<int64_t> out_indptr(static_cast<size_t>(t) + 1);
  std::vector<int32_t> out_indices(static_cast<size_t>(k * t));
  std::vector<float> out_values(static_cast<size_t>(k * t));
  abi::SliceSampleArgs args;
  args.indptr = mc.indptr.data();
  args.indices = mc.indices.data();
  args.values = mc.values.data();
  args.cols = local_cols.data();
  args.num_cols = t;
  args.out_indptr = out_indptr.data();
  args.out_indices = out_indices.data();
  args.out_values = out_values.data();
  args.rng = &got_rng;
  args.uniform_int = &UniformIntThunk;
  const int64_t nnz = reinterpret_cast<abi::SliceSampleFn>(entry)(&args);

  const Compressed& wc = want.Csc();
  if (nnz != want.nnz()) {
    return false;
  }
  for (int64_t i = 0; i <= t; ++i) {
    if (out_indptr[static_cast<size_t>(i)] != wc.indptr[i]) {
      return false;
    }
  }
  for (int64_t e = 0; e < nnz; ++e) {
    if (out_indices[static_cast<size_t>(e)] != wc.indices[e] ||
        out_values[static_cast<size_t>(e)] != wc.values[e]) {
      return false;
    }
  }
  return true;
}

bool SelfCheck(const Region& region, void* entry) {
  if (region.kind == core::OpKind::kFusedSliceSample) {
    return SelfCheckSliceSample(region, entry);
  }
  return SelfCheckEdgeMap(region, entry);
}

}  // namespace

JitStats GlobalJitStats() {
  Counters& c = GlobalCounters();
  JitStats stats;
  stats.regions = c.regions.load(std::memory_order_relaxed);
  stats.compiled = c.compiled.load(std::memory_order_relaxed);
  stats.artifact_hits = c.artifact_hits.load(std::memory_order_relaxed);
  stats.hits = c.hits.load(std::memory_order_relaxed);
  stats.demotions = c.demotions.load(std::memory_order_relaxed);
  return stats;
}

void ResetGlobalJitStats() {
  Counters& c = GlobalCounters();
  c.regions.store(0, std::memory_order_relaxed);
  c.compiled.store(0, std::memory_order_relaxed);
  c.artifact_hits.store(0, std::memory_order_relaxed);
  c.hits.store(0, std::memory_order_relaxed);
  c.demotions.store(0, std::memory_order_relaxed);
}

JitEngine::JitEngine(JitEngineOptions options)
    : options_(options),
      cache_(KernelCacheOptions{.artifact_dir = options.artifact_dir,
                                .compiler = options.compiler}) {}

std::shared_ptr<const core::FusedKernelTable> JitEngine::TableFor(const core::CompiledPlan& plan) {
  // Read live (not through core::EnvFlagEnabled's process-lifetime cache):
  // this is an operational kill switch, and one getenv per plan is free.
  if (std::getenv("GS_JIT_DISABLE") != nullptr) {
    return nullptr;
  }
  const std::vector<Region> regions = RegionExtractor::Extract(plan.program());
  if (regions.empty()) {
    return nullptr;
  }
  std::lock_guard<std::mutex> lock(mutex_);
  if (auto it = tables_.find(plan.Digest()); it != tables_.end()) {
    return it->second;
  }

  Counters& counters = GlobalCounters();
  std::unordered_map<int, CompiledRegion> compiled;
  for (const Region& region : regions) {
    counters.regions.fetch_add(1, std::memory_order_relaxed);
    if (!CodeEmitter::CanEmit(region)) {
      counters.demotions.fetch_add(1, std::memory_order_relaxed);
      GS_LOG(Info) << "jit: region not emittable, interpreting: " << region.Signature();
      continue;
    }
    const std::string key = plan.DigestHex() + "-r" + std::to_string(region.rank);
    // Compile, load, and verify under one catch-all: a failure at any rung
    // demotes this region to the interpreter — never the request.
    try {
      std::string error;
      bool from_artifact = false;
      void* entry = cache_.LoadOrCompile(key, CodeEmitter::Emit(region, key), &error,
                                         &from_artifact);
      if (entry == nullptr) {
        counters.demotions.fetch_add(1, std::memory_order_relaxed);
        GS_LOG(Warning) << "jit: demoting " << region.Signature() << ": " << error;
        continue;
      }
      if (options_.self_check && !SelfCheck(region, entry)) {
        counters.demotions.fetch_add(1, std::memory_order_relaxed);
        GS_LOG(Warning) << "jit: demoting " << region.Signature()
                        << ": self-check mismatch vs interpreter (" << key << ")";
        continue;
      }
      counters.compiled.fetch_add(1, std::memory_order_relaxed);
      if (from_artifact) {
        counters.artifact_hits.fetch_add(1, std::memory_order_relaxed);
      }
      compiled.emplace(region.node_id, CompiledRegion{region, entry});
    } catch (const std::exception& e) {
      counters.demotions.fetch_add(1, std::memory_order_relaxed);
      GS_LOG(Warning) << "jit: demoting " << region.Signature() << ": " << e.what();
    }
  }
  GS_LOG(Info) << "jit: plan " << plan.DigestHex() << " (" << plan.label() << "): "
               << compiled.size() << "/" << regions.size() << " region(s) compiled";
  auto table = std::make_shared<JitKernelTable>(std::move(compiled));
  tables_.emplace(plan.Digest(), table);
  return table;
}

}  // namespace gs::jit
