// Region extraction: which parts of a compiled Program the JIT compiles.
//
// A *region* is one fused operator — kFusedSliceSample, kFusedEdgeMap, or
// kFusedEdgeMapReduce — together with the attributes the CodeEmitter bakes
// into its specialized translation unit (fanout, reduce axis, stage
// pipeline) and the chain of extract/layout nodes feeding its matrix
// operand (recorded for reporting; the feeders themselves stay interpreted).
//
// Regions are assigned *computation ranks*: position in the program's
// topological node order, counting fused nodes only. The rank is the stable
// half of the kernel-cache key ("<plan digest>-r<rank>"): two processes
// compiling the same plan produce the same rank for the same region, so a
// warm restart can reuse persisted artifacts without recompiling.

#ifndef GSAMPLER_JIT_REGION_H_
#define GSAMPLER_JIT_REGION_H_

#include <string>
#include <vector>

#include "core/ir.h"

namespace gs::jit {

struct Region {
  int rank = 0;      // computation rank among the program's fused nodes
  int node_id = -1;  // the fused node this region compiles
  core::OpKind kind = core::OpKind::kFusedEdgeMap;

  // Baked specialization inputs (which are meaningful depends on kind).
  int64_t k = 0;                             // kFusedSliceSample fanout
  int axis = 0;                              // kFusedEdgeMapReduce axis
  std::vector<sparse::EdgeMapStage> stages;  // edge-map pipeline

  // Extract/layout nodes feeding the region's matrix operand, nearest
  // first (e.g. the kSliceCols a fused sample was split from).
  std::vector<int> feeders;

  // Stable one-line description, e.g.
  //   "r1 node=9 fused_edge_map_reduce axis=1 stages=3 feeds=[7,4]".
  std::string Signature() const;
};

// Walks `program` in topological order and assigns computation ranks to its
// fused subgraphs. Programs without fused nodes yield an empty vector (the
// executor then runs pure interpretation).
class RegionExtractor {
 public:
  static std::vector<Region> Extract(const core::Program& program);
};

}  // namespace gs::jit

#endif  // GSAMPLER_JIT_REGION_H_
